"""Pluggable execution strategies for planned query batches.

The planner (:func:`repro.serving.protocol.plan_batch`) decides *what*
must be evaluated; an :class:`Executor` decides *where and how*:

:class:`InlineExecutor`
    The historical sequential path: every request, in order, through
    the handle's public (LRU-consulting) query methods.  No dedup, no
    pre-filter — byte-for-byte the cache-counter behavior single-shot
    callers observe.
:class:`ThreadExecutor`
    The historical ``batch(..., parallel=True)`` path, now planner
    driven: dedup + cache pre-filter, then fan-out — through the
    service's own ``_fanout_jobs`` hook when it has one (the sharded
    handle's per-shard grouping) or a chunked thread pool otherwise.
:class:`ProcessExecutor`
    Fork workers, each holding the (copy-on-write) handle; jobs are
    chunked across them and answers travel back over pipes.  Sidesteps
    the GIL for CPU-bound query mixes.  The same fork machinery powers
    process-parallel shard *builds*
    (:func:`repro.serving.executors.fork_map`).
:class:`SocketExecutor`
    Ship the planned jobs to a remote :mod:`repro.serving.router`
    endpoint over the wire codec; only cache misses leave the
    process, and answers are bulk-inserted into the local LRU like
    any other executor's.

Every executor implements ``run(service, requests, strict=...)`` and
returns one :class:`QueryResult` per request, in request order, with
per-request error semantics.  The conformance suite holds all four
bit-identical on the full §V family.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.exceptions import QueryError
from repro.queries.cache import QueryCache
from repro.serving.protocol import (
    CACHEABLE_KINDS,
    KIND_METHODS,
    BatchPlan,
    QueryRequest,
    QueryResult,
    plan_batch,
)

__all__ = [
    "EXECUTORS",
    "Executor",
    "InlineExecutor",
    "ProcessExecutor",
    "SocketExecutor",
    "ThreadExecutor",
    "evaluate_request",
    "finish_plan",
    "fork_map",
]

_T = TypeVar("_T")

RequestLike = Union[QueryRequest, Sequence[Any]]


def evaluate_request(service: Any, request: QueryRequest,
                     uncached: bool = False) -> QueryResult:
    """One dispatched query; failures become the result's ``error``.

    ``uncached=True`` routes through the service's ``_uncached_query``
    hook (planned paths pre-filter the LRU, so consulting it again
    per-job would double-count); otherwise the public method runs,
    LRU and all.  ``TypeError`` — the malformed-arguments failure —
    is reported with the same message the legacy path raised.
    """
    try:
        if uncached and hasattr(service, "_uncached_query"):
            value = service._uncached_query(request.kind, request.args)
        else:
            method = KIND_METHODS[request.kind]
            value = getattr(service, method)(*request.args)
        return QueryResult(id=request.id, value=value)
    except QueryError as exc:
        return QueryResult(id=request.id, error=str(exc))
    except TypeError as exc:
        return QueryResult(
            id=request.id,
            error=f"bad arguments for batch query "
                  f"{request.kind.value!r}: {exc}")


def finish_plan(plan: BatchPlan,
                results: List[Optional[QueryResult]]
                ) -> List[QueryResult]:
    """Settle a plan after its jobs ran: cache, duplicates, errors.

    * executed cacheable answers are **bulk-inserted** into the plan's
      LRU (errors are not cached — a later retry re-evaluates);
    * pre-filtered cache hits and planner-detected invalid requests
      become results;
    * duplicate positions repeat the original's answer, with the same
      copy-out discipline as the cache (callers may mutate answers).
    """
    cache = plan.cache
    if cache is not None:
        for request in plan.jobs:
            if request.kind not in CACHEABLE_KINDS:
                continue
            result = results[request.id]
            if result is None or not result.ok:
                continue
            try:
                cache.store(request.key, result.value)
            except TypeError:  # unhashable args: never cacheable
                continue
            # The stored object must never be the one callers mutate
            # (the LRU's copy-out contract); hand the caller a copy.
            result.value = QueryCache._copy_out(result.value)
    for position, value in plan.cached:
        results[position] = QueryResult(
            id=position, value=QueryCache._copy_out(value))
    for position, message in plan.invalid:
        results[position] = QueryResult(id=position, error=message)
    for position, original in plan.duplicates:
        source = results[original]
        results[position] = QueryResult(
            id=position,
            value=QueryCache._copy_out(source.value),
            error=source.error)
    settled: List[QueryResult] = []
    for position, result in enumerate(results):
        if result is None:  # pragma: no cover - planner invariant
            result = QueryResult(id=position,
                                 error="request was never evaluated")
        settled.append(result)
    return settled


class Executor:
    """Strategy interface: evaluate a request mix against a service.

    ``strict=True`` reproduces the legacy ``batch()`` contract —
    malformed requests (empty / unknown kind) raise immediately;
    otherwise they become per-request errors.
    """

    name = "abstract"

    def run(self, service: Any, requests: Sequence[RequestLike],
            strict: bool = False) -> List[QueryResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (sockets, workers)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class InlineExecutor(Executor):
    """Sequential, in-process, through the public cached methods."""

    name = "inline"

    def run(self, service: Any, requests: Sequence[RequestLike],
            strict: bool = False) -> List[QueryResult]:
        plan = plan_batch(requests, cache=None, dedup=False,
                          strict=strict)
        results: List[Optional[QueryResult]] = [None] * len(plan)
        for request in plan.jobs:
            results[request.id] = evaluate_request(service, request)
        return finish_plan(plan, results)


def _service_cache(service: Any) -> Optional[QueryCache]:
    cache = getattr(service, "cache", None)
    return cache if isinstance(cache, QueryCache) else None


def _thread_fanout(service: Any, jobs: List[QueryRequest],
                   emit: Callable[[int, QueryResult], None],
                   max_workers: Optional[int]) -> None:
    """Generic chunked thread fan-out over the uncached evaluators.

    One pool task per chunk, not per request: thread dispatch is pure
    overhead for sub-millisecond queries.
    """
    from concurrent.futures import ThreadPoolExecutor

    def run_chunk(chunk: List[QueryRequest]) -> None:
        for request in chunk:
            emit(request.id,
                 evaluate_request(service, request, uncached=True))

    workers = min(max_workers or min(8, len(jobs)), len(jobs))
    if workers <= 1:
        run_chunk(jobs)
        return
    chunks = [jobs[index::workers] for index in range(workers)]
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        for _ in pool.map(run_chunk, chunks):
            pass


class ThreadExecutor(Executor):
    """Planned thread fan-out (the ``parallel=True`` path).

    Dedup + LRU pre-filter, then the service's own ``_fanout_jobs``
    (per-shard grouping on the sharded handle) or the generic chunked
    pool.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def run(self, service: Any, requests: Sequence[RequestLike],
            strict: bool = False) -> List[QueryResult]:
        plan = plan_batch(requests, cache=_service_cache(service),
                          dedup=True, strict=strict)
        results: List[Optional[QueryResult]] = [None] * len(plan)

        def emit(position: int, result: QueryResult) -> None:
            results[position] = result

        if plan.jobs:
            fanout = getattr(service, "_fanout_jobs", None)
            if fanout is not None:
                fanout(plan.jobs, emit, self.max_workers)
            else:
                _thread_fanout(service, plan.jobs, emit,
                               self.max_workers)
        return finish_plan(plan, results)


# ----------------------------------------------------------------------
# Fork helpers (shared by ProcessExecutor and shard builds)
# ----------------------------------------------------------------------
def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except (ValueError, AttributeError):  # pragma: no cover
        pass
    return None  # pragma: no cover - non-POSIX fallback


def fork_map(tasks: Sequence[Callable[[], _T]],
             max_workers: Optional[int] = None) -> List[_T]:
    """Run independent thunks across forked workers; results in order.

    The process-pool analogue of the build's thread fan-out: each
    worker inherits the parent address space copy-on-write (no task
    pickling — only *results* cross the pipe), computes its chunk,
    and ships the outcomes back.  A task that raises fails the whole
    map, re-raising the original exception object in the parent when
    it pickles (so ``GrammarError`` stays ``GrammarError`` — callers'
    error contracts survive the fork) and a ``RuntimeError`` carrying
    the message otherwise.  Falls back to sequential execution when
    fork is unavailable or pointless (one task, one worker).
    """
    import pickle

    context = _fork_context()
    workers = min(max_workers or os.cpu_count() or 1, len(tasks))
    if context is None or workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]

    def worker(indices: List[int], conn: Any) -> None:
        payload: List[Any] = []
        for index in indices:
            try:
                payload.append((index, tasks[index](), None))
            except Exception as exc:  # ship the failure, keep going
                try:
                    pickle.loads(pickle.dumps(exc))
                    shipped: Any = exc
                except Exception:
                    shipped = RuntimeError(
                        f"forked task failed: "
                        f"{type(exc).__name__}: {exc}")
                payload.append((index, None, shipped))
        conn.send(payload)
        conn.close()

    chunks = [list(range(len(tasks)))[offset::workers]
              for offset in range(workers)]
    children = []
    for indices in chunks:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(target=worker,
                                  args=(indices, child_conn))
        process.start()
        child_conn.close()
        children.append((process, parent_conn, indices))
    results: List[Any] = [None] * len(tasks)
    failure: Optional[BaseException] = None
    for process, conn, indices in children:
        try:
            payload = conn.recv()
        except EOFError:
            payload = [(index, None,
                        RuntimeError("forked task failed: worker "
                                     "process died"))
                       for index in indices]
        finally:
            conn.close()
        process.join()
        for index, value, error in payload:
            if error is not None and failure is None:
                failure = error
            results[index] = value
    if failure is not None:
        raise failure
    return results


class ProcessExecutor(Executor):
    """Fork workers holding the handle; chunk jobs across them.

    The service is warmed (index, reachability, degree summaries)
    *before* forking so every worker inherits the built structures
    copy-on-write instead of rebuilding them per process.  Answers —
    plain ints/bools/lists/dicts — travel back over pipes.  When fork
    is unavailable (non-POSIX) or the batch is tiny, falls back to
    planned inline evaluation; answers are identical either way.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def run(self, service: Any, requests: Sequence[RequestLike],
            strict: bool = False) -> List[QueryResult]:
        plan = plan_batch(requests, cache=_service_cache(service),
                          dedup=True, strict=strict)
        results: List[Optional[QueryResult]] = [None] * len(plan)
        jobs = plan.jobs
        context = _fork_context()
        workers = min(self.max_workers or os.cpu_count() or 1,
                      max(len(jobs), 1))
        if jobs:
            warm = getattr(service, "warm", None)
            if warm is not None:
                warm()
            if context is None or workers <= 1 or len(jobs) <= 1:
                for request in jobs:
                    results[request.id] = evaluate_request(
                        service, request, uncached=True)
            else:
                self._run_forked(context, service, jobs, results,
                                 workers)
        return finish_plan(plan, results)

    @staticmethod
    def _run_forked(context: Any, service: Any,
                    jobs: List[QueryRequest],
                    results: List[Optional[QueryResult]],
                    workers: int) -> None:
        def worker(chunk: List[QueryRequest], conn: Any) -> None:
            payload = []
            for request in chunk:
                result = evaluate_request(service, request,
                                          uncached=True)
                payload.append((result.id, result.value, result.error))
            conn.send(payload)
            conn.close()

        chunks = [jobs[offset::workers] for offset in range(workers)]
        children = []
        for chunk in chunks:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(target=worker,
                                      args=(chunk, child_conn))
            process.start()
            child_conn.close()
            children.append((process, parent_conn, chunk))
        for process, conn, chunk in children:
            try:
                payload = conn.recv()
            except EOFError:
                payload = [(request.id, None,
                            "executor worker process died")
                           for request in chunk]
            finally:
                conn.close()
            process.join()
            for position, value, error in payload:
                results[position] = QueryResult(id=position,
                                                value=value,
                                                error=error)


class SocketExecutor(Executor):
    """Ship planned jobs to a served endpoint over the wire codec.

    Holds one persistent connection (lazily opened, lock-guarded);
    the local plan still deduplicates and pre-filters the handle's
    LRU, so only genuinely unanswered requests cross the wire, and
    remote answers are bulk-inserted locally like any other
    executor's.  ``service`` may be ``None`` — a pure client-side
    batch with no local handle at all.  ``retries=N`` resends the
    planned jobs on up to N link deaths (reads are idempotent), so a
    server restart or a dropped connection costs a reconnect, not a
    batch.
    """

    name = "socket"

    def __init__(self, address: Union[str, tuple],
                 codec: str = "json",
                 timeout: Optional[float] = None,
                 retries: int = 0) -> None:
        self.address = address
        self.codec = codec
        self.timeout = timeout
        self.retries = retries
        self._client: Optional[Any] = None
        self._lock = threading.Lock()

    def _connect(self) -> Any:
        from repro.serving.router import GraphClient
        with self._lock:
            if self._client is None:
                self._client = GraphClient(self.address,
                                           codec=self.codec,
                                           timeout=self.timeout,
                                           retries=self.retries)
            return self._client

    def run(self, service: Any, requests: Sequence[RequestLike],
            strict: bool = False) -> List[QueryResult]:
        cache = _service_cache(service) if service is not None else None
        plan = plan_batch(requests, cache=cache, dedup=True,
                          strict=strict)
        results: List[Optional[QueryResult]] = [None] * len(plan)
        if plan.jobs:
            client = self._connect()
            for result in client.execute(plan.jobs):
                results[result.id] = result
        return finish_plan(plan, results)

    def close(self) -> None:
        with self._lock:
            if self._client is not None:
                self._client.close()
                self._client = None


#: name -> zero-config constructor, for CLIs and benchmarks.
EXECUTORS = {
    "inline": InlineExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(name: str, **kwargs: Any) -> Executor:
    """Build an executor by name (``socket`` needs an ``address``)."""
    if name == "socket":
        return SocketExecutor(**kwargs)
    factory = EXECUTORS.get(name)
    if factory is None:
        raise QueryError(f"unknown executor {name!r}; expected one of "
                         f"{sorted(EXECUTORS) + ['socket']}")
    return factory(**kwargs)
