"""The event-loop serving core: one loop, many in-flight frames.

The original serving loop was strict request–response: one thread per
connection, one frame in flight, each reply written before the next
frame was even read.  A single slow cross-shard ``reach`` therefore
head-of-line-blocked every other query on that connection — the exact
bottleneck the ROADMAP's "millions of users" item names.

:class:`ServerLoop` replaces it with an :mod:`asyncio` front end:

* one event loop accepts connections and reads frames from all of
  them concurrently;
* **sequence-tagged** ``batch`` frames (see :mod:`repro.serving.codec`)
  are dispatched to a bounded pool of daemon worker threads and the
  reply is written *when that batch completes* — other frames on the
  same connection keep flowing, overtaking slow ones freely;
* **untagged** frames keep the legacy strict contract per connection
  (the reply is awaited before the next frame is read), so old
  clients observe exactly the behavior they were written against;
* wire hardening lives here too: an over-limit length header gets a
  structured ``error`` reply before the deterministic close (the
  unread payload has desynchronized the stream — continuing would
  misparse payload bytes as headers), truncated frames surface as
  :class:`~repro.serving.codec.FrameError` instead of masquerading as
  clean closes, and a listener that fails while the server is *not*
  shutting down records a :class:`~repro.exceptions.ReproError`
  carrying the errno on :attr:`ServerLoop.fault` instead of silently
  ending the accept loop.

The loop owns no graph state: it speaks to any ``GraphService`` (the
router's proxy-backed sharded handle, a shard process's local handle)
through ``service.execute(requests, executor=...)``, exactly like the
threaded loop it replaces — which is why pipelining cannot change a
single answer.
"""

from __future__ import annotations

import asyncio
import queue
import socket
import struct
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.exceptions import ReproError
from repro.serving.codec import (
    MAX_FRAME_BYTES,
    FrameError,
    OversizedFrameError,
    WireError,
    decode_frame,
    frame_bytes,
    results_to_wire,
    wire_to_requests,
)

__all__ = ["DEFAULT_PIPELINE", "ServerLoop"]

_LENGTH = struct.Struct("!I")

#: Default bound on concurrently evaluating batches per server —
#: shared across connections, so one chatty client cannot starve the
#: pool and an idle server holds no threads beyond it.
DEFAULT_PIPELINE = 16

_READY_TIMEOUT_SECONDS = 30.0


def _resolve_future(future: "asyncio.Future[Any]", value: Any,
                    error: Optional[BaseException]) -> None:
    if future.cancelled():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(value)


class _WorkerPool:
    """A fixed set of daemon threads evaluating batches for the loop.

    Deliberately not a :class:`concurrent.futures.ThreadPoolExecutor`:
    its workers are non-daemon and joined at interpreter exit, so one
    batch stuck on a dead shard link would keep the whole process
    alive.  These workers are daemons — a hung evaluation can never
    outlive the server that scheduled it.
    """

    def __init__(self, workers: int) -> None:
        self._queue: "queue.SimpleQueue[Optional[Tuple[Any, ...]]]" = \
            queue.SimpleQueue()
        self._workers = workers
        for index in range(workers):
            threading.Thread(target=self._worker_main, daemon=True,
                             name=f"repro-batch-{index}").start()

    def submit(self, loop: asyncio.AbstractEventLoop,
               task: Callable[[], Any]) -> "asyncio.Future[Any]":
        future: "asyncio.Future[Any]" = loop.create_future()
        self._queue.put((loop, task, future))
        return future

    def _worker_main(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            loop, task, future = item
            try:
                value, error = task(), None
            except BaseException as exc:  # shipped to the awaiter
                value, error = None, exc
            try:
                loop.call_soon_threadsafe(_resolve_future, future,
                                          value, error)
            except RuntimeError:  # loop already closed: shutdown race
                return

    def stop(self) -> None:
        for _ in range(self._workers):
            self._queue.put(None)


class ServerLoop:
    """An asyncio serving loop over an already-bound listener socket.

    ``start()`` runs the loop in a daemon thread (the router's shape);
    ``run()`` runs it in the calling thread (the shard processes'
    shape — they serve until the parent terminates them).  ``stop()``
    is the *deliberate* shutdown path: it sets the stopping flag
    before waking the loop, which is how the accept loop tells an
    orderly close from a listener that died under it.
    """

    def __init__(self, listener: socket.socket, service: Any,
                 executor: Any, codec: str, info: Dict[str, Any],
                 pipeline: Optional[int] = None) -> None:
        self._listener = listener
        self._service = service
        self._executor = executor
        self._codec = codec
        self._info = info
        self._workers = max(1, (DEFAULT_PIPELINE if pipeline is None
                                else pipeline))
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._pool: Optional[_WorkerPool] = None
        self._stopping = threading.Event()
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: An unexpected death of the serving loop (listener failure,
        #: loop crash) — ``None`` while healthy or after ``stop()``.
        self.fault: Optional[ReproError] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServerLoop":
        """Run the loop in a background daemon thread; wait until live."""
        self._thread = threading.Thread(target=self.run, daemon=True,
                                        name="repro-serving-loop")
        self._thread.start()
        if not self._ready.wait(_READY_TIMEOUT_SECONDS):
            raise ReproError("serving loop failed to come up within "
                             f"{_READY_TIMEOUT_SECONDS:.0f}s")
        return self

    def run(self) -> None:
        """Run the loop in the calling thread until stopped or dead."""
        try:
            asyncio.run(self._main())
        except ReproError as exc:
            if not self._stopping.is_set():
                self.fault = exc
        except Exception as exc:  # pragma: no cover - defensive
            if not self._stopping.is_set():
                self.fault = ReproError(
                    f"serving loop died unexpectedly: "
                    f"{type(exc).__name__}: {exc}")
        finally:
            self._ready.set()  # never leave start() waiting on a crash

    def stop(self, timeout: float = 2.0) -> None:
        """Deliberate shutdown: flag first, then wake and join the loop."""
        self._stopping.set()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:  # loop closed between check and call
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        self._pool = _WorkerPool(self._workers)
        self._listener.setblocking(False)
        connections: Set["asyncio.Task[Any]"] = set()
        accept = loop.create_task(self._accept_loop(connections))
        stopped = loop.create_task(self._stop_event.wait())
        self._ready.set()
        try:
            await asyncio.wait({accept, stopped},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            accept.cancel()
            stopped.cancel()
            for task in list(connections):
                task.cancel()
            await asyncio.gather(stopped, *connections,
                                 return_exceptions=True)
            self._pool.stop()
        # A finished (not cancelled) accept task means the listener
        # failed while we were not shutting down: propagate the fault.
        if accept.done() and not accept.cancelled():
            accept.result()
        else:
            await asyncio.gather(accept, return_exceptions=True)

    async def _accept_loop(self,
                           connections: Set["asyncio.Task[Any]"]
                           ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                conn, _ = await loop.sock_accept(self._listener)
            except asyncio.CancelledError:
                raise
            except OSError as exc:
                if self._stopping.is_set():
                    return  # orderly: close() flagged before closing us
                raise ReproError(
                    f"server listener failed unexpectedly "
                    f"(errno {exc.errno}): {exc}") from exc
            task = loop.create_task(self._serve_connection(conn))
            connections.add(task)
            task.add_done_callback(connections.discard)

    # ------------------------------------------------------------------
    # One connection
    # ------------------------------------------------------------------
    async def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader, writer = await asyncio.open_connection(sock=conn)
        except OSError:
            conn.close()
            return
        write_lock = asyncio.Lock()
        in_flight: Set["asyncio.Task[Any]"] = set()
        try:
            while True:
                try:
                    received = await _read_frame(reader)
                except OversizedFrameError as exc:
                    # The unread payload poisons the stream: answer
                    # with a structured error, then close — the peer
                    # learns *why* instead of seeing a bare RST.
                    await self._reply(writer, write_lock, None,
                                      {"op": "error",
                                       "message": str(exc),
                                       "fatal": True})
                    return
                except FrameError:
                    return  # desynchronized: only closing is safe
                except WireError as exc:
                    # Payload fully consumed before the decode failed:
                    # the stream is intact, tell the peer (addressed
                    # to the request when its sequence id was read).
                    await self._reply(writer, write_lock,
                                      getattr(exc, "seq", None),
                                      {"op": "error",
                                       "message": str(exc)})
                    continue
                if received is None:
                    return  # clean close on a frame boundary
                seq, message = received
                op = message.get("op")
                if op == "ping":
                    await self._reply(writer, write_lock, seq,
                                      {"op": "pong"})
                elif op == "info":
                    await self._reply(writer, write_lock, seq,
                                      {"op": "info_reply",
                                       **self._info})
                elif op == "batch":
                    work = self._answer_batch(writer, write_lock, seq,
                                              message)
                    if seq is None:
                        # Untagged = legacy strict request-response:
                        # the reply must precede the next read.
                        await work
                    else:
                        task = asyncio.get_running_loop().create_task(
                            work)
                        in_flight.add(task)
                        task.add_done_callback(in_flight.discard)
                else:
                    await self._reply(writer, write_lock, seq,
                                      {"op": "error",
                                       "message": f"unknown op {op!r}"})
        except (ConnectionError, OSError):
            return  # peer vanished mid-conversation
        finally:
            for task in list(in_flight):
                task.cancel()
            writer.close()

    async def _answer_batch(self, writer: asyncio.StreamWriter,
                            write_lock: asyncio.Lock,
                            seq: Optional[int],
                            message: Dict[str, Any]) -> None:
        try:
            pairs = wire_to_requests(message.get("requests", []))
        except WireError as exc:
            await self._reply(writer, write_lock, seq,
                              {"op": "error", "message": str(exc)})
            return
        loop = asyncio.get_running_loop()
        try:
            wire = await self._pool.submit(
                loop, lambda: self._run_batch(pairs))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # The evaluation itself died — a shared fate, but still
            # *this batch's* fate: report it per-request (the batch
            # contract) instead of as a connection-level error that a
            # pipelined client would treat as poisoning the link.
            message = f"batch failed: {exc}"
            await self._reply(writer, write_lock, seq,
                              {"op": "results",
                               "results": [{"id": client_id,
                                            "error": message}
                                           for client_id, _ in pairs]})
            return
        await self._reply(writer, write_lock, seq,
                          {"op": "results", "results": wire})

    def _run_batch(self, pairs: List[Tuple[int, Tuple[Any, ...]]]
                   ) -> List[Dict[str, Any]]:
        """Evaluate one batch on a worker thread (identical to the
        threaded loop: plan + executor via ``service.execute``, client
        ids echoed back on the results)."""
        results = self._service.execute(
            [request for _, request in pairs], executor=self._executor)
        for (client_id, _), result in zip(pairs, results):
            result.id = client_id
        return results_to_wire(results)

    async def _reply(self, writer: asyncio.StreamWriter,
                     write_lock: asyncio.Lock, seq: Optional[int],
                     message: Dict[str, Any]) -> None:
        payload = frame_bytes(message, self._codec, seq=seq)
        async with write_lock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # peer vanished; the read path closes us


async def _read_frame(reader: asyncio.StreamReader
                      ) -> Optional[Tuple[Optional[int],
                                          Dict[str, Any]]]:
    """The async twin of :func:`repro.serving.codec.recv_frame`."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close on a frame boundary
        raise FrameError(f"connection closed mid-frame "
                         f"({len(exc.partial)}/{_LENGTH.size} header "
                         f"bytes read)") from None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise OversizedFrameError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(f"connection closed mid-frame "
                         f"({len(exc.partial)}/{length} payload bytes "
                         f"read)") from None
    return decode_frame(payload)
