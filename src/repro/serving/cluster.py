"""The cluster manifest: declarative multi-host topology for routers.

A deployment that outgrows one machine stops being a tree of forked
children: shard servers come up on their own hosts (``repro shard-serve
graph.grps --shard 2``), routers come and go independently, and the
only thing binding them is a small JSON document — the **cluster
manifest** — saying which endpoints serve which shard of which
container build::

    {
      "version": 1,
      "epoch": 3,
      "grps_hash": "9f2a…64 hex chars…",
      "codec": "json",
      "container": "graph.grps",
      "shards": [["10.0.0.5:9000", "10.0.0.6:9000"],
                 ["10.0.0.7:9000", "10.0.0.8:9000"]]
    }

``shards[i]`` lists the **replica endpoints** of logical shard ``i``
(a router load-balances reads across them and fails over when one
drops); ``grps_hash`` is the SHA-256 of the container bytes, so a
router can prove its routing metadata (boundary closure, shard node
counts) describes the *same build* every endpoint decoded; ``epoch``
is the deployment generation — bumped on every re-partition/re-deploy,
and checked against each shard server's self-description so a router
started from a stale file fails loudly instead of merging answers
across generations.

Manifests are validated on load (:meth:`ClusterManifest.load`) and on
construction: every violation raises
:class:`~repro.exceptions.ManifestError` naming the offending field.
The module is pure data — no sockets, no grammars — so it is testable
in isolation and safe to import anywhere.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.exceptions import ManifestError
from repro.serving.codec import CODECS, WireError, parse_address

__all__ = [
    "MANIFEST_VERSION",
    "ClusterManifest",
    "container_hash",
]

#: The manifest schema generation this build reads and writes.
MANIFEST_VERSION = 1

_HASH_HEX_LENGTH = 64  # sha256


def container_hash(data: bytes) -> str:
    """The canonical identity of a container build: SHA-256, hex."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class ClusterManifest:
    """One validated cluster topology: shard → replica endpoints.

    Immutable by design — a manifest describes a deployment *moment*;
    changing the topology means writing a new file with a new epoch.
    Construction validates every field (endpoint syntax included), so
    a manifest object in hand is always well-formed.
    """

    #: ``shards[i]`` = the replica endpoints of logical shard ``i``.
    shards: Tuple[Tuple[str, ...], ...]
    #: SHA-256 (hex) of the container bytes every endpoint decoded.
    grps_hash: str
    #: Deployment generation; routers refuse mismatched shard servers.
    epoch: int = 0
    #: Wire codec for the router↔shard links.
    codec: str = "json"
    #: Optional path to the container file (relative paths are
    #: resolved against the manifest file's directory on load).
    container: Optional[str] = None
    version: int = MANIFEST_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "shards",
            tuple(tuple(group) for group in self.shards))
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.version != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {self.version!r} "
                f"(this build reads version {MANIFEST_VERSION})")
        if not isinstance(self.epoch, int) or isinstance(self.epoch, bool) \
                or self.epoch < 0:
            raise ManifestError(
                f"manifest epoch must be a non-negative integer, "
                f"got {self.epoch!r}")
        if self.codec not in CODECS:
            raise ManifestError(
                f"unknown manifest codec {self.codec!r}; expected one "
                f"of {CODECS}")
        if not (isinstance(self.grps_hash, str)
                and len(self.grps_hash) == _HASH_HEX_LENGTH
                and all(ch in "0123456789abcdef"
                        for ch in self.grps_hash)):
            raise ManifestError(
                "manifest grps_hash must be a 64-character lowercase "
                f"sha256 hex digest, got {self.grps_hash!r}")
        if not self.shards:
            raise ManifestError("manifest lists no shards")
        for index, group in enumerate(self.shards):
            if not group:
                raise ManifestError(
                    f"shard {index} lists no replica endpoints")
            for endpoint in group:
                if not isinstance(endpoint, str):
                    raise ManifestError(
                        f"shard {index} endpoint {endpoint!r} is not "
                        f"a string")
                try:
                    parse_address(endpoint)
                except (WireError, ValueError) as exc:
                    raise ManifestError(
                        f"shard {index} endpoint {endpoint!r} is "
                        f"invalid: {exc}") from None

    # ------------------------------------------------------------------
    # Convenience surface
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def endpoints_for(self, shard: int) -> Tuple[str, ...]:
        """The replica endpoints of one logical shard."""
        if not 0 <= shard < len(self.shards):
            raise ManifestError(
                f"shard index {shard} out of range "
                f"(manifest has {len(self.shards)} shards)")
        return self.shards[shard]

    def matches(self, data: bytes) -> bool:
        """Whether ``data`` is the container build this manifest names."""
        return container_hash(data) == self.grps_hash

    def verify_container(self, data: bytes) -> None:
        """Raise :class:`ManifestError` unless ``data`` matches."""
        actual = container_hash(data)
        if actual != self.grps_hash:
            raise ManifestError(
                f"container hash mismatch: manifest names build "
                f"{self.grps_hash[:12]}…, the container on disk is "
                f"{actual[:12]}… — refusing to route with stale "
                f"metadata")

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def for_container(cls, data: bytes,
                      shards: Sequence[Sequence[str]],
                      epoch: int = 0, codec: str = "json",
                      container: Optional[Union[str, Path]] = None
                      ) -> "ClusterManifest":
        """Build a manifest for a container already in hand."""
        return cls(shards=tuple(tuple(group) for group in shards),
                   grps_hash=container_hash(data), epoch=epoch,
                   codec=codec,
                   container=(None if container is None
                              else str(container)))

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "version": self.version,
            "epoch": self.epoch,
            "grps_hash": self.grps_hash,
            "codec": self.codec,
            "shards": [list(group) for group in self.shards],
        }
        if self.container is not None:
            payload["container"] = self.container
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "ClusterManifest":
        if not isinstance(payload, dict):
            raise ManifestError(
                f"manifest must be a JSON object, got "
                f"{type(payload).__name__}")
        unknown = set(payload) - {"version", "epoch", "grps_hash",
                                  "codec", "container", "shards"}
        if unknown:
            raise ManifestError(
                f"unknown manifest fields: {sorted(unknown)}")
        missing = {"grps_hash", "shards"} - set(payload)
        if missing:
            raise ManifestError(
                f"manifest is missing required fields: "
                f"{sorted(missing)}")
        shards = payload["shards"]
        if not isinstance(shards, list) or not all(
                isinstance(group, list) for group in shards):
            raise ManifestError(
                "manifest shards must be a list of endpoint lists")
        return cls(shards=tuple(tuple(group) for group in shards),
                   grps_hash=payload["grps_hash"],
                   epoch=payload.get("epoch", 0),
                   codec=payload.get("codec", "json"),
                   container=payload.get("container"),
                   version=payload.get("version", MANIFEST_VERSION))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the manifest as JSON; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ClusterManifest":
        """Read + validate a manifest file.

        Every failure mode — unreadable file, malformed JSON, schema
        violation — surfaces as :class:`ManifestError` naming the
        file, so ``serve --manifest`` fails with one coherent message.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ManifestError(
                f"cannot read manifest {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(
                f"manifest {path} is not valid JSON: {exc}") from None
        manifest = cls.from_dict(payload)
        if manifest.container is not None:
            # Relative container paths mean "next to the manifest".
            resolved = Path(manifest.container)
            if not resolved.is_absolute():
                object.__setattr__(manifest, "container",
                                   str(path.parent / resolved))
        return manifest
