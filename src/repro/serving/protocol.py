"""The typed query protocol: requests, results, plans, the service.

Before this module existed, queries traveled as ad-hoc tuples —
``("reach", 1, 9)`` — with three structural gaps that blocked every
serving follow-on named in the ROADMAP:

* **no request identity** — a batch answer was only interpretable by
  its list position, so answers could not cross a process or socket
  boundary where reordering and multiplexing happen;
* **no error channel** — the first malformed request aborted the whole
  batch mid-way with an exception, which is the wrong failure shape
  for a server answering many independent clients;
* **no plan/execute seam** — deduplication, cache pre-filtering and
  fan-out were welded into each handle's ``batch()``, so there was
  nowhere to slot a process pool or a socket router.

This module supplies the three missing pieces:

:class:`QueryRequest` / :class:`QueryResult`
    One §V query with a stable identity (``id``), a canonical
    :class:`QueryKind` and positional ``args``; one answer carrying
    either a ``value`` or a per-request ``error`` string.  Both are
    plain dataclasses with a wire form (see :mod:`repro.serving.codec`).
:func:`plan_batch` / :class:`BatchPlan`
    The planner: normalizes a request mix, deduplicates repeated
    requests, and — when handed the handle's query-result LRU —
    **pre-filters cache hits** so only genuinely unanswered work
    reaches an executor, and **bulk-inserts the misses** afterwards
    (see :func:`repro.serving.executors.finish_plan`).  Planning is
    pure bookkeeping; *executing* a plan is an
    :class:`repro.serving.executors.Executor`'s job.
:class:`GraphService`
    The mixin both serving handles (and the socket client) share:
    ``execute(requests) -> List[QueryResult]`` with per-request error
    semantics, behind a pluggable executor.  ``batch()`` on the
    handles is a thin adapter over it that unwraps values and raises
    the first error — the historical surface, unchanged.

The canonical kind strings are exactly the tuples the query-result
LRU keys on (``("out", 4)``, ``("reach", 1, 9)``…), so a cached
single-shot query also pre-filters a planned batch and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.queries.cache import QueryCache
    from repro.serving.executors import Executor

__all__ = [
    "BatchPlan",
    "CACHEABLE_KINDS",
    "GraphService",
    "KIND_ALIASES",
    "KIND_METHODS",
    "QueryKind",
    "QueryRequest",
    "QueryResult",
    "is_retryable",
    "normalize_request",
    "plan_batch",
]


def is_retryable(error: BaseException) -> bool:
    """Whether a failed wire exchange may be resent to a replica.

    The §V query family is read-only, so resending a request can never
    double-apply anything — the only question is whether the failure
    indicts the *link* or the *request*.  Retryable failures are link
    deaths: a refused/reset connection (``OSError``), a frame truncated
    mid-stream (:class:`~repro.serving.codec.FrameError`), a connection
    closed with requests in flight or a per-request timeout
    (:class:`~repro.serving.codec.ConnectionLost`).  A structured error
    *reply* (plain :class:`~repro.serving.codec.WireError`) is not: the
    server is alive and answered — a peer would say the same thing.
    """
    from repro.serving.codec import ConnectionLost, FrameError

    return isinstance(error, (OSError, FrameError, ConnectionLost))


class QueryKind(str, Enum):
    """Canonical names of the §V query family.

    The values double as the wire spelling and as the first element
    of the LRU cache key, so every layer — single-shot methods,
    ``batch()``, executors, the socket protocol — speaks one
    vocabulary.
    """

    REACH = "reach"
    OUT = "out"
    IN = "in"
    NEIGHBORHOOD = "neighborhood"
    DEGREE = "degree"
    PATH = "path"
    COMPONENTS = "components"
    NODES = "nodes"
    EDGES = "edges"
    RPQ = "rpq"
    PATTERN_COUNT = "pattern_count"
    OUT_EDGES = "out_edges"


#: canonical kind -> public method name on the serving handles.
KIND_METHODS: Dict[QueryKind, str] = {
    QueryKind.REACH: "reachable",
    QueryKind.OUT: "out_neighbors",
    QueryKind.IN: "in_neighbors",
    QueryKind.NEIGHBORHOOD: "neighbors",
    QueryKind.DEGREE: "degree",
    QueryKind.PATH: "path",
    QueryKind.COMPONENTS: "connected_components",
    QueryKind.NODES: "node_count",
    QueryKind.EDGES: "edge_count",
    QueryKind.RPQ: "rpq",
    QueryKind.PATTERN_COUNT: "pattern_count",
    QueryKind.OUT_EDGES: "out_edges",
}

#: Every accepted spelling (the legacy ``batch()`` wire format kept
#: every method alias; the typed protocol accepts them all).
KIND_ALIASES: Dict[str, QueryKind] = {
    "reach": QueryKind.REACH,
    "reachable": QueryKind.REACH,
    "out": QueryKind.OUT,
    "out_neighbors": QueryKind.OUT,
    "in": QueryKind.IN,
    "in_": QueryKind.IN,
    "in_neighbors": QueryKind.IN,
    "neighborhood": QueryKind.NEIGHBORHOOD,
    "neighbors": QueryKind.NEIGHBORHOOD,
    "degree": QueryKind.DEGREE,
    "path": QueryKind.PATH,
    "components": QueryKind.COMPONENTS,
    "connected_components": QueryKind.COMPONENTS,
    "nodes": QueryKind.NODES,
    "node_count": QueryKind.NODES,
    "edges": QueryKind.EDGES,
    "edge_count": QueryKind.EDGES,
    "rpq": QueryKind.RPQ,
    "pattern_count": QueryKind.PATTERN_COUNT,
    "pattern-count": QueryKind.PATTERN_COUNT,
    "out_edges": QueryKind.OUT_EDGES,
    "out-edges": QueryKind.OUT_EDGES,
}

#: Kinds whose answers the handles' LRU caches (same key tuples); the
#: planner only pre-filters/bulk-inserts these.
CACHEABLE_KINDS = frozenset({
    QueryKind.REACH,
    QueryKind.OUT,
    QueryKind.IN,
    QueryKind.NEIGHBORHOOD,
    QueryKind.PATH,
    QueryKind.RPQ,
    QueryKind.PATTERN_COUNT,
    QueryKind.OUT_EDGES,
})


@dataclass(frozen=True)
class QueryRequest:
    """One typed query: canonical kind, positional args, identity.

    ``id`` is the request's identity within one batch — executors and
    the socket protocol route answers back by it, so results survive
    reordering, deduplication and multiplexing.  The planner assigns
    list positions when the caller does not.
    """

    kind: QueryKind
    args: Tuple[Any, ...] = ()
    id: Optional[int] = None

    @property
    def key(self) -> Tuple[Any, ...]:
        """The LRU cache key this request shares with single-shot calls.

        RPQ keys canonicalize the pattern text through the regex
        front end's minimized-DFA form, so equivalent patterns
        (``a|b`` / ``b|a``) share one cache entry wherever they are
        asked — single-shot, batched, or over the socket.
        """
        if self.kind is QueryKind.RPQ and self.args:
            from repro.rpq.regex import cache_key
            return ("rpq", cache_key(self.args[0]), *self.args[1:])
        return (self.kind.value, *self.args)

    def with_id(self, request_id: int) -> "QueryRequest":
        """A copy carrying ``request_id`` (requests are immutable)."""
        return QueryRequest(self.kind, self.args, request_id)

    def __repr__(self) -> str:
        args = ", ".join(repr(arg) for arg in self.args)
        return f"QueryRequest({self.kind.value}({args}), id={self.id})"


@dataclass
class QueryResult:
    """One answer: a ``value`` or a per-request ``error`` — never both.

    The error channel is what lets a batch keep going past a bad
    request: the failing request gets its error string, every other
    request still gets its answer.
    """

    id: Optional[int] = None
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether this result carries a value."""
        return self.error is None

    def unwrap(self) -> Any:
        """The value, or raise the error as a :class:`QueryError`."""
        if self.error is not None:
            raise QueryError(self.error)
        return self.value


def normalize_request(request: Union[QueryRequest, Sequence[Any]],
                      request_id: Optional[int] = None) -> QueryRequest:
    """Accept a :class:`QueryRequest` or a legacy ``(kind, *args)`` tuple.

    Raises :class:`QueryError` for an empty request or an unknown
    kind — the same messages the legacy ``batch()`` raised, so strict
    callers keep their historical behavior.
    """
    if isinstance(request, QueryRequest):
        if request_id is not None and request.id != request_id:
            return request.with_id(request_id)
        return request
    if isinstance(request, str):
        # A bare string would iterate as characters; reject it whole.
        request = (request,)
    if not request:
        raise QueryError("empty batch request")
    kind_name, *args = request
    kind = KIND_ALIASES.get(kind_name)
    if kind is None:
        raise QueryError(
            f"unknown batch query kind {kind_name!r}; expected one "
            f"of {sorted(KIND_ALIASES)}"
        )
    return QueryRequest(kind, tuple(args), request_id)


@dataclass
class BatchPlan:
    """A planned batch: what to execute, what is already answered.

    ``requests`` is the full normalized mix (``id`` = list position;
    positions of malformed requests hold ``None``); ``jobs`` is the
    subset an executor must actually evaluate.  Everything else is
    settled at planning time: ``duplicates`` repeat another position's
    answer, ``cached`` positions were answered by the handle's LRU
    pre-filter, ``invalid`` positions carry normalization errors.
    ``cache`` is where :func:`~repro.serving.executors.finish_plan`
    bulk-inserts the cacheable misses after execution.
    """

    requests: List[Optional[QueryRequest]]
    jobs: List[QueryRequest]
    duplicates: List[Tuple[int, int]] = field(default_factory=list)
    cached: List[Tuple[int, Any]] = field(default_factory=list)
    invalid: List[Tuple[int, str]] = field(default_factory=list)
    cache: Optional["QueryCache"] = None

    def __len__(self) -> int:
        return len(self.requests)


def plan_batch(requests: Iterable[Union[QueryRequest, Sequence[Any]]],
               cache: Optional["QueryCache"] = None,
               dedup: bool = True,
               strict: bool = False) -> BatchPlan:
    """Normalize, deduplicate and cache-pre-filter a request mix.

    ``dedup=True`` collapses repeated requests (serving traffic is
    skewed; identical requests are the common case): only the first
    occurrence becomes a job, later ones are recorded as duplicates.
    Requests with unhashable arguments cannot be dedup or cache keys;
    they stay as their own jobs and fail (or not) at evaluation time,
    exactly like the sequential path.

    ``cache`` enables cache-aware planning: each unique cacheable
    request is looked up **once** (counting one hit or miss on the
    handle's ``cache_info``), hits never reach an executor, and the
    plan remembers the cache so executed misses are bulk-inserted.

    ``strict=True`` raises the first normalization error (legacy
    ``batch()`` behavior); otherwise malformed requests become
    per-request errors and the rest of the batch proceeds.
    """
    normalized: List[Optional[QueryRequest]] = []
    jobs: List[QueryRequest] = []
    duplicates: List[Tuple[int, int]] = []
    cached: List[Tuple[int, Any]] = []
    invalid: List[Tuple[int, str]] = []
    first_index: Dict[Tuple[Any, ...], int] = {}
    cached_values: Dict[Tuple[Any, ...], Any] = {}
    for position, raw in enumerate(requests):
        try:
            request = normalize_request(raw, position)
        except QueryError as exc:
            if strict:
                raise
            normalized.append(None)
            invalid.append((position, str(exc)))
            continue
        normalized.append(request)
        key = request.key
        try:
            hash(key)
        except TypeError:
            jobs.append(request)  # unhashable: evaluate as-is
            continue
        if dedup:
            original = first_index.get(key)
            if original is not None:
                duplicates.append((position, original))
                continue
            first_index[key] = position
        if key in cached_values:
            # A duplicate that dedup was asked not to collapse, or a
            # second lookup of a key the pre-filter already answered.
            cached.append((position, cached_values[key]))
            continue
        if cache is not None and request.kind in CACHEABLE_KINDS:
            hit, value = cache.lookup(key)
            if hit:
                cached.append((position, value))
                cached_values[key] = value
                continue
        jobs.append(request)
    return BatchPlan(requests=normalized, jobs=jobs,
                     duplicates=duplicates, cached=cached,
                     invalid=invalid, cache=cache)


class GraphService:
    """Mixin: the typed execution surface shared by every handle.

    A concrete service provides the §V query methods named in
    :data:`KIND_METHODS` (plus, optionally, the executor hooks
    ``_uncached_query`` / ``_fanout_jobs`` / ``warm`` and a ``cache``
    property).  In return it gains :meth:`execute` — typed requests
    in, typed results out, per-request errors, pluggable executor —
    which is the one entry point every executor, the socket router
    and the wire protocol call.
    """

    def execute(self, requests: Iterable[Union[QueryRequest,
                                               Sequence[Any]]],
                executor: Optional["Executor"] = None
                ) -> List[QueryResult]:
        """Answer ``requests``; one :class:`QueryResult` per request.

        Unlike :meth:`batch`, a bad request never aborts the batch:
        its result carries ``error`` and every other request is still
        answered.  ``executor`` defaults to
        :class:`repro.serving.executors.InlineExecutor` — today's
        sequential path.
        """
        from repro.serving.executors import InlineExecutor
        runner = executor if executor is not None else InlineExecutor()
        return runner.run(self, list(requests), strict=False)
