"""The wire codec: framed JSON or binary messages over a socket.

Every conversation in the serving stack — client to router, router to
shard server — exchanges *messages*: plain dicts with an ``"op"`` key
(``batch`` / ``results`` / ``info`` / ``info_reply`` / ``ping`` /
``pong`` / ``error``).  A message travels as one *frame*::

    4-byte big-endian payload length | 1 tag byte | payload

The tag selects the codec — ``J`` for JSON (debuggable, the default)
or ``B`` for the compact binary form — so both ends of a connection
can speak either encoding per message and a reader never guesses.

Pipelined conversations use the *sequence-tagged* frame variant: the
lowercase tags ``j``/``b`` prefix the payload with a client-assigned
sequence id (one uvarint)::

    4-byte length | 'j' or 'b' | uvarint sequence id | payload

A server echoes each reply under the request's sequence id, so many
frames can be in flight on one connection and the client correlates
answers in whatever order the server finishes them.  Untagged frames
remain fully supported — a reader dispatches per frame on the tag
byte, so old strict request–response clients and new multiplexing
ones share a wire format (and a server) without negotiation.

The binary codec reuses the container format's uvarint machinery
(:mod:`repro.util.varint`): kinds travel as short strings (forward
compatible — an unknown kind becomes a per-request error, not a
decode failure), integers as zigzag uvarints, and structured values
(lists, the degree-extrema dict, ``path``'s ``None``) as a small
tagged value grammar.  Round-tripping is exact for every value the
§V query family produces, which is what the executor conformance
suite holds bit-identical.

Nothing here touches grammars or handles: the codec is pure bytes,
so it is testable (and fuzzable) in isolation.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import EncodingError, ReproError
from repro.serving.protocol import QueryRequest, QueryResult
from repro.util.varint import read_uvarint, write_uvarint

__all__ = [
    "CODECS",
    "ConnectionLost",
    "FrameError",
    "OversizedFrameError",
    "RequestTimeout",
    "WireError",
    "decode_frame",
    "decode_message",
    "encode_frame",
    "encode_message",
    "frame_bytes",
    "recv_frame",
    "recv_message",
    "requests_to_wire",
    "results_from_wire",
    "results_to_wire",
    "send_frame",
    "send_message",
    "wire_to_requests",
]

#: Supported codec names (the tag byte is the first letter).
CODECS = ("json", "binary")

_LENGTH = struct.Struct("!I")
#: Refuse absurd frames instead of allocating unbounded buffers.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_TAG_JSON = 0x4A   # 'J'
_TAG_BINARY = 0x42  # 'B'
#: Sequence-tagged variants: the lowercase tag, then a uvarint
#: sequence id, then the same payload the uppercase tag carries.
_TAG_SEQ_OFFSET = 0x20
_TAG_JSON_SEQ = _TAG_JSON + _TAG_SEQ_OFFSET     # 'j'
_TAG_BINARY_SEQ = _TAG_BINARY + _TAG_SEQ_OFFSET  # 'b'

_OPS = ("batch", "results", "info", "info_reply", "ping", "pong",
        "error", "shutdown")
_OP_CODES = {name: code for code, name in enumerate(_OPS)}


class WireError(ReproError):
    """A malformed frame, message or value on the wire."""


class ConnectionLost(WireError):
    """A link died before the reply arrived.

    Raised when a connection is refused or reset, closed cleanly with
    requests still in flight, or closed instead of answering a strict
    round trip.  Every §V query is a read, so a caller holding replica
    endpoints may resend the same request elsewhere — see
    :func:`repro.serving.protocol.is_retryable`.
    """


class RequestTimeout(ConnectionLost):
    """No reply within the per-request timeout.

    A :class:`ConnectionLost` subclass because the connection it was
    issued on can no longer be trusted (a late reply would desync a
    strict stream); the failed link is dropped and the request is fair
    game for a replica retry.
    """


class FrameError(WireError):
    """A framing-level failure that desynchronizes the byte stream.

    After one of these (an over-limit length header, a connection
    closed mid-frame) the reader can no longer tell where the next
    frame starts — the only safe recovery is closing the connection.
    Ordinary :class:`WireError` decode failures happen *after* the
    payload was fully consumed, so the stream stays in sync and the
    peer can simply be told about the bad message.
    """


class OversizedFrameError(FrameError):
    """A length header past :data:`MAX_FRAME_BYTES`.

    Distinguished from other framing failures because a server can
    still *reply* before closing: the header was read in full, so the
    socket's send direction is intact even though the unread payload
    poisons the receive direction.  The serving loop answers with a
    structured ``error`` frame and then closes deterministically.
    """


# ----------------------------------------------------------------------
# Request / result <-> wire dicts (shared by both codecs)
# ----------------------------------------------------------------------
def requests_to_wire(requests: Sequence[Union[QueryRequest,
                                              Sequence[Any]]]
                     ) -> List[Dict[str, Any]]:
    """Requests (typed or legacy tuples) -> wire dicts.

    Unknown kinds and malformed shapes are shipped as-is (kind
    ``"?"`` for unrecognizable ones): the *server* answers them with
    per-request errors, so one bad request cannot abort a remote
    batch any more than a local one.
    """
    wire: List[Dict[str, Any]] = []
    for position, request in enumerate(requests):
        if isinstance(request, QueryRequest):
            rid = request.id if request.id is not None else position
            wire.append({"id": rid, "kind": request.kind.value,
                         "args": list(request.args)})
            continue
        if isinstance(request, str):
            request = (request,)
        items = list(request)
        kind = str(items[0]) if items else "?"
        wire.append({"id": position, "kind": kind, "args": items[1:]})
    return wire


def wire_to_requests(wire: Sequence[Dict[str, Any]]
                     ) -> List[Tuple[int, Tuple[Any, ...]]]:
    """Wire dicts -> ``(client_id, legacy_tuple)`` pairs.

    The tuples feed straight into the server-side planner (non-strict
    mode), which turns unknown kinds into per-request errors; the
    client ids are echoed back on the results, preserving request
    identity across the socket.
    """
    decoded: List[Tuple[int, Tuple[Any, ...]]] = []
    for entry in wire:
        args = entry.get("args", [])
        if not isinstance(args, list):
            raise WireError(f"request args must be a list, got "
                            f"{type(args).__name__}")
        decoded.append((int(entry["id"]),
                        (entry.get("kind", "?"),
                         *(_ensure_value(arg) for arg in args))))
    return decoded


def results_to_wire(results: Sequence[QueryResult]
                    ) -> List[Dict[str, Any]]:
    """Results -> wire dicts (``value`` xor ``error``)."""
    wire: List[Dict[str, Any]] = []
    for result in results:
        entry: Dict[str, Any] = {"id": result.id}
        if result.error is not None:
            entry["error"] = result.error
        else:
            entry["value"] = result.value
        wire.append(entry)
    return wire


def results_from_wire(wire: Sequence[Dict[str, Any]]
                      ) -> List[QueryResult]:
    """Wire dicts -> :class:`QueryResult` objects."""
    return [QueryResult(id=int(entry["id"]),
                        value=_ensure_value(entry.get("value")),
                        error=entry.get("error"))
            for entry in wire]


def _ensure_value(value: Any) -> Any:
    """Reject wire values outside the §V answer vocabulary."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, list):
        return [_ensure_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _ensure_value(item)
                for key, item in value.items()}
    raise WireError(f"unsupported wire value type "
                    f"{type(value).__name__}")


# ----------------------------------------------------------------------
# Message <-> bytes
# ----------------------------------------------------------------------
def encode_message(message: Dict[str, Any], codec: str = "json"
                   ) -> bytes:
    """One message dict -> one framed payload (without the length)."""
    return encode_frame(message, codec)


def encode_frame(message: Dict[str, Any], codec: str = "json",
                 seq: Optional[int] = None) -> bytes:
    """One message -> one frame payload, optionally sequence-tagged.

    ``seq=None`` produces the classic untagged frame; an integer
    produces the pipelined variant (lowercase tag, uvarint sequence
    id before the payload).
    """
    if codec == "json":
        tag, body = _TAG_JSON, json.dumps(
            message, separators=(",", ":")).encode("utf-8")
    elif codec == "binary":
        tag, body = _TAG_BINARY, _encode_binary(message)
    else:
        raise WireError(f"unknown codec {codec!r}; expected one of "
                        f"{CODECS}")
    if seq is None:
        return bytes([tag]) + body
    if seq < 0:
        raise WireError(f"sequence id must be >= 0, got {seq}")
    head = bytearray([tag + _TAG_SEQ_OFFSET])
    write_uvarint(head, seq)
    return bytes(head) + body


def decode_message(payload: bytes) -> Dict[str, Any]:
    """One frame payload -> the message dict (tag-dispatched).

    Accepts both untagged and sequence-tagged frames; callers that
    need the sequence id use :func:`decode_frame`.
    """
    return decode_frame(payload)[1]


def decode_frame(payload: bytes
                 ) -> Tuple[Optional[int], Dict[str, Any]]:
    """One frame payload -> ``(sequence id or None, message dict)``.

    Decode failures *after* the sequence id was read carry it on the
    exception's ``seq`` attribute, so a server can still address its
    error reply to the offending request.
    """
    if not payload:
        raise WireError("empty frame")
    tag = payload[0]
    seq: Optional[int] = None
    pos = 1
    if tag in (_TAG_JSON_SEQ, _TAG_BINARY_SEQ):
        try:
            seq, pos = read_uvarint(payload, 1)
        except ReproError:
            raise WireError("truncated sequence tag") from None
        tag -= _TAG_SEQ_OFFSET
    try:
        if tag == _TAG_JSON:
            return seq, _decode_json(payload[pos:])
        if tag == _TAG_BINARY:
            return seq, _decode_binary(payload[pos:])
    except WireError as exc:
        exc.seq = seq
        raise
    raise WireError(f"unknown frame tag {payload[0]:#x}")


def _decode_json(body: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"bad JSON frame: {exc}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise WireError("JSON frame is not an op message")
    return message


# ----------------------------------------------------------------------
# The binary codec
# ----------------------------------------------------------------------
# Value grammar, one tag byte each:
_V_NONE, _V_TRUE, _V_FALSE, _V_INT, _V_STR, _V_LIST, _V_DICT = range(7)


def _zigzag(value: int) -> int:
    # ~(value << 1) is exact for arbitrary-precision negatives (the
    # C idiom `x >> 63` is not — Python ints are unbounded).
    return ~(value << 1) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    write_uvarint(out, len(raw))
    out.extend(raw)


def _read_str(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = read_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise WireError("truncated string")
    return data[pos:end].decode("utf-8"), end


def _write_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_V_NONE)
    elif value is True:
        out.append(_V_TRUE)
    elif value is False:
        out.append(_V_FALSE)
    elif isinstance(value, int):
        if not -(2 ** 63) <= value < 2 ** 63:
            # The container's uvarint reader is 64-bit bounded; fail
            # at encode time instead of emitting undecodable bytes
            # (JSON carries arbitrary precision if anyone needs it).
            raise WireError(f"integer {value} out of the binary "
                            f"codec's 64-bit range")
        out.append(_V_INT)
        write_uvarint(out, _zigzag(value))
    elif isinstance(value, str):
        out.append(_V_STR)
        _write_str(out, value)
    elif isinstance(value, (list, tuple)):
        out.append(_V_LIST)
        write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out.append(_V_DICT)
        write_uvarint(out, len(value))
        for key, item in value.items():
            _write_str(out, str(key))
            _write_value(out, item)
    else:
        raise WireError(f"unsupported wire value type "
                        f"{type(value).__name__}")


def _read_value(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise WireError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _V_NONE:
        return None, pos
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_INT:
        raw, pos = read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == _V_STR:
        return _read_str(data, pos)
    if tag == _V_LIST:
        count, pos = read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _V_DICT:
        count, pos = read_uvarint(data, pos)
        mapping: Dict[str, Any] = {}
        for _ in range(count):
            key, pos = _read_str(data, pos)
            mapping[key], pos = _read_value(data, pos)
        return mapping, pos
    raise WireError(f"unknown value tag {tag:#x}")


def _encode_binary(message: Dict[str, Any]) -> bytes:
    op = message.get("op")
    code = _OP_CODES.get(op)
    if code is None:
        raise WireError(f"unknown message op {op!r}")
    out = bytearray([code])
    if op == "batch":
        requests = message.get("requests", [])
        write_uvarint(out, len(requests))
        for entry in requests:
            write_uvarint(out, int(entry["id"]))
            _write_str(out, entry["kind"])
            args = entry.get("args", [])
            write_uvarint(out, len(args))
            for arg in args:
                _write_value(out, arg)
    elif op == "results":
        results = message.get("results", [])
        write_uvarint(out, len(results))
        for entry in results:
            write_uvarint(out, int(entry["id"]))
            error = entry.get("error")
            if error is not None:
                out.append(1)
                _write_str(out, error)
            else:
                out.append(0)
                _write_value(out, entry.get("value"))
    elif op in ("info_reply", "error"):
        _write_value(out, {key: value for key, value in message.items()
                           if key != "op"})
    # ping / pong / info / shutdown carry no payload.
    return bytes(out)


def _decode_binary(data: bytes) -> Dict[str, Any]:
    try:
        if not data:
            raise WireError("empty binary message")
        code = data[0]
        if code >= len(_OPS):
            raise WireError(f"unknown op code {code}")
        op = _OPS[code]
        pos = 1
        if op == "batch":
            count, pos = read_uvarint(data, pos)
            requests = []
            for _ in range(count):
                rid, pos = read_uvarint(data, pos)
                kind, pos = _read_str(data, pos)
                argc, pos = read_uvarint(data, pos)
                args = []
                for _ in range(argc):
                    arg, pos = _read_value(data, pos)
                    args.append(arg)
                requests.append({"id": rid, "kind": kind, "args": args})
            return {"op": op, "requests": requests}
        if op == "results":
            count, pos = read_uvarint(data, pos)
            results = []
            for _ in range(count):
                rid, pos = read_uvarint(data, pos)
                flag = data[pos]
                pos += 1
                if flag:
                    error, pos = _read_str(data, pos)
                    results.append({"id": rid, "error": error})
                else:
                    value, pos = _read_value(data, pos)
                    results.append({"id": rid, "value": value})
            return {"op": op, "results": results}
        if op in ("info_reply", "error"):
            payload, pos = _read_value(data, pos)
            if not isinstance(payload, dict):
                raise WireError(f"{op} payload must be a dict")
            payload["op"] = op
            return payload
        return {"op": op}
    except (IndexError, ValueError, EncodingError) as exc:
        raise WireError(f"corrupt binary message: {exc}") from None


# ----------------------------------------------------------------------
# Socket framing
# ----------------------------------------------------------------------
def frame_bytes(message: Dict[str, Any], codec: str = "json",
                seq: Optional[int] = None) -> bytes:
    """One message -> the complete wire frame (length prefix included)."""
    payload = encode_frame(message, codec, seq=seq)
    return _LENGTH.pack(len(payload)) + payload


def send_message(sock: socket.socket, message: Dict[str, Any],
                 codec: str = "json") -> None:
    """Encode and write one length-prefixed untagged frame."""
    sock.sendall(frame_bytes(message, codec))


def send_frame(sock: socket.socket, message: Dict[str, Any],
               codec: str = "json", seq: Optional[int] = None) -> None:
    """Encode and write one frame, sequence-tagged when ``seq`` is set."""
    sock.sendall(frame_bytes(message, codec, seq=seq))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean boundary close.

    A peer that vanishes *inside* the read is a wire failure, not a
    close: truncating a frame and truncating a conversation must not
    look alike, so the partial read raises :class:`FrameError`.
    """
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if not chunks:
                return None
            raise FrameError(f"connection closed mid-frame "
                             f"({len(chunks)}/{count} bytes read)")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame's message; ``None`` on a clean peer close."""
    received = recv_frame(sock)
    return None if received is None else received[1]


def recv_frame(sock: socket.socket
               ) -> Optional[Tuple[Optional[int], Dict[str, Any]]]:
    """Read one frame; ``(seq, message)``, or ``None`` on a clean close.

    Only a connection that dies exactly on a frame boundary is a
    clean close; a death mid-header or mid-payload raises
    :class:`FrameError`, and an over-limit length header raises
    :class:`OversizedFrameError` (the payload is left unread — the
    stream is desynchronized and must be closed).
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise OversizedFrameError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed mid-frame (header read, "
                         "payload missing)")
    return decode_frame(payload)


# ----------------------------------------------------------------------
# Addresses ("host:port" or "unix:/path")
# ----------------------------------------------------------------------
def parse_address(address: Union[str, Tuple[str, int]]
                  ) -> Tuple[str, Union[Tuple[str, int], str]]:
    """``(family, target)`` where family is ``"tcp"`` or ``"unix"``."""
    if isinstance(address, tuple):
        host, port = address
        return "tcp", (host, int(port))
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    host, sep, port = address.rpartition(":")
    if not sep:
        raise WireError(f"bad address {address!r}; expected "
                        f"'host:port' or 'unix:/path'")
    return "tcp", (host or "127.0.0.1", int(port))


def connect_socket(address: Union[str, Tuple[str, int]],
                   timeout: Optional[float] = None) -> socket.socket:
    """Connect to a serving endpoint of either family."""
    family, target = parse_address(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            sock.settimeout(timeout)
        sock.connect(target)
    else:
        sock = socket.create_connection(target, timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def bind_socket(address: Union[str, Tuple[str, int]]
                ) -> Tuple[socket.socket, str]:
    """Bind + listen; returns ``(listener, canonical endpoint)``."""
    family, target = parse_address(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(target)
        endpoint = f"unix:{target}"
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(target)
        host, port = sock.getsockname()[:2]
        endpoint = f"{host}:{port}"
    sock.listen(64)
    return sock, endpoint
