"""The serving subsystem: typed queries, executors, socket transport.

Layering (each module only reaches down):

``protocol``
    :class:`QueryRequest` / :class:`QueryResult`, the
    :class:`QueryKind` vocabulary, the batch planner
    (:func:`plan_batch`) and the :class:`GraphService` mixin that
    gives every handle ``execute()`` with per-request errors.
``codec``
    The wire format: framed JSON or compact binary messages,
    value-exact for every §V answer.
``executors``
    :class:`InlineExecutor` / :class:`ThreadExecutor` /
    :class:`ProcessExecutor` / :class:`SocketExecutor` — where and
    how a planned batch runs; plus :func:`fork_map`, the
    process-pool primitive shard builds reuse.
``aio``
    :class:`ServerLoop`, the asyncio serving core: many in-flight
    sequence-tagged frames per connection, answered as each batch
    completes; legacy untagged frames stay strictly ordered.
``cluster``
    :class:`ClusterManifest` — the validated JSON topology file
    (shard → replica endpoints, container hash, epoch) that lets
    routers and shard servers start independently of each other.
``router``
    :func:`serve` / :func:`connect`: shard servers (forked per shard
    — ``replicas=N`` for failover — or pre-existing, named by a
    manifest), :class:`ReplicatedShard` links with round-robin reads
    and retry-with-backoff, :class:`ShardHost` (one shard standalone,
    the ``shard-serve`` building block), and the client — pipelined
    (``pipeline=True``, ``execute_async``, ``pool_size=``) or strict,
    with ``retries=`` on the blocking surface.

:class:`repro.api.CompressedGraph` and
:class:`repro.sharding.ShardedCompressedGraph` are the two in-process
:class:`GraphService` implementations; ``serve()`` lifts either onto
sockets without changing a single answer.
"""

from repro.serving.aio import DEFAULT_PIPELINE, ServerLoop
from repro.serving.cluster import (
    MANIFEST_VERSION,
    ClusterManifest,
    container_hash,
)
from repro.serving.codec import (
    ConnectionLost,
    FrameError,
    OversizedFrameError,
    RequestTimeout,
    WireError,
)
from repro.serving.executors import (
    EXECUTORS,
    Executor,
    InlineExecutor,
    ProcessExecutor,
    SocketExecutor,
    ThreadExecutor,
    fork_map,
    make_executor,
)
from repro.serving.protocol import (
    CACHEABLE_KINDS,
    BatchPlan,
    GraphService,
    QueryKind,
    QueryRequest,
    QueryResult,
    is_retryable,
    normalize_request,
    plan_batch,
)
from repro.serving.router import (
    DEFAULT_SHARD_TIMEOUT,
    GraphClient,
    GraphServer,
    RemoteShard,
    ReplicatedShard,
    ShardHost,
    connect,
    serve,
)

__all__ = [
    "BatchPlan",
    "CACHEABLE_KINDS",
    "ClusterManifest",
    "ConnectionLost",
    "DEFAULT_PIPELINE",
    "DEFAULT_SHARD_TIMEOUT",
    "EXECUTORS",
    "Executor",
    "FrameError",
    "GraphClient",
    "GraphServer",
    "GraphService",
    "InlineExecutor",
    "MANIFEST_VERSION",
    "OversizedFrameError",
    "ProcessExecutor",
    "QueryKind",
    "QueryRequest",
    "QueryResult",
    "RemoteShard",
    "ReplicatedShard",
    "RequestTimeout",
    "ServerLoop",
    "ShardHost",
    "SocketExecutor",
    "ThreadExecutor",
    "WireError",
    "connect",
    "container_hash",
    "fork_map",
    "is_retryable",
    "make_executor",
    "normalize_request",
    "plan_batch",
    "serve",
]
