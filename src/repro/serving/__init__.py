"""The serving subsystem: typed queries, executors, socket transport.

Layering (each module only reaches down):

``protocol``
    :class:`QueryRequest` / :class:`QueryResult`, the
    :class:`QueryKind` vocabulary, the batch planner
    (:func:`plan_batch`) and the :class:`GraphService` mixin that
    gives every handle ``execute()`` with per-request errors.
``codec``
    The wire format: framed JSON or compact binary messages,
    value-exact for every §V answer.
``executors``
    :class:`InlineExecutor` / :class:`ThreadExecutor` /
    :class:`ProcessExecutor` / :class:`SocketExecutor` — where and
    how a planned batch runs; plus :func:`fork_map`, the
    process-pool primitive shard builds reuse.
``aio``
    :class:`ServerLoop`, the asyncio serving core: many in-flight
    sequence-tagged frames per connection, answered as each batch
    completes; legacy untagged frames stay strictly ordered.
``router``
    :func:`serve` / :func:`connect`: one process per shard, a router
    multiplexing planned batches over sockets, and the client —
    pipelined (``pipeline=True``, ``execute_async``, ``pool_size=``)
    or strict.

:class:`repro.api.CompressedGraph` and
:class:`repro.sharding.ShardedCompressedGraph` are the two in-process
:class:`GraphService` implementations; ``serve()`` lifts either onto
sockets without changing a single answer.
"""

from repro.serving.aio import DEFAULT_PIPELINE, ServerLoop
from repro.serving.codec import FrameError, OversizedFrameError, WireError
from repro.serving.executors import (
    EXECUTORS,
    Executor,
    InlineExecutor,
    ProcessExecutor,
    SocketExecutor,
    ThreadExecutor,
    fork_map,
    make_executor,
)
from repro.serving.protocol import (
    CACHEABLE_KINDS,
    BatchPlan,
    GraphService,
    QueryKind,
    QueryRequest,
    QueryResult,
    normalize_request,
    plan_batch,
)
from repro.serving.router import (
    GraphClient,
    GraphServer,
    RemoteShard,
    connect,
    serve,
)

__all__ = [
    "BatchPlan",
    "CACHEABLE_KINDS",
    "DEFAULT_PIPELINE",
    "EXECUTORS",
    "Executor",
    "FrameError",
    "GraphClient",
    "GraphServer",
    "GraphService",
    "InlineExecutor",
    "OversizedFrameError",
    "ProcessExecutor",
    "QueryKind",
    "QueryRequest",
    "QueryResult",
    "RemoteShard",
    "ServerLoop",
    "SocketExecutor",
    "ThreadExecutor",
    "WireError",
    "connect",
    "fork_map",
    "make_executor",
    "normalize_request",
    "plan_batch",
    "serve",
]
