"""Socket serving: shard server processes, the router, the client.

The deployment shape the paper's query family implies — grammars are
small, queries are ``O(|G|)``, so a compressed graph can sit resident
in memory and *answer traffic* — becomes concrete here:

:class:`GraphServer` (``serve()``)
    Serves a ``.grpr``/``.grps`` container on a socket endpoint.  For
    a sharded container it forks **one process per shard** (each
    decodes only its own shard's bytes, warms its index and serves
    its local §V family on a loopback socket) plus a **router** in
    the calling process: a proxy-backed
    :class:`~repro.sharding.ShardedCompressedGraph` whose "shard
    handles" are :class:`RemoteShard` socket clients.  Incoming
    batches are planned once (dedup + router-side LRU pre-filter) and
    the per-shard groups are multiplexed over the shard links in
    parallel; cross-shard queries run the exact routed/merged
    algorithms the in-process handle uses, so answers are
    bit-identical to local evaluation.
:class:`GraphClient` (``connect()``)
    The wire-codec client: typed ``execute()``, legacy-shaped
    ``batch()``, single-shot ``query()``, ``info()``/``ping()`` — and,
    with ``pipeline=True``, a **multiplexing** client: every frame is
    sequence-tagged, many batches ride one connection concurrently
    (``execute_async`` returns a future), and ``pool_size=`` spreads
    the traffic over several such connections.
:class:`RemoteShard`
    A shard-shaped proxy speaking the same wire protocol; the sharded
    handle cannot tell it from a local :class:`CompressedGraph`.  The
    router runs its shard links pipelined, so concurrent client
    batches multiplex over one socket per shard instead of queueing
    on a per-connection lock.

Every server — the router and each shard process — runs the
:class:`repro.serving.aio.ServerLoop` event loop: many in-flight
tagged frames per connection, legacy untagged frames still answered
strictly in order.

Endpoints are ``"host:port"`` (TCP, loopback by default) or
``"unix:/path"``.  Both frames and payloads come from
:mod:`repro.serving.codec`; one process per shard means shard builds,
crashes and restarts are isolated, and the router process never holds
a single decoded grammar.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import ManifestError, ReproError, ShardUnavailable
from repro.serving.aio import ServerLoop
from repro.serving.cluster import ClusterManifest, container_hash
from repro.serving.codec import (
    ConnectionLost,
    FrameError,
    RequestTimeout,
    WireError,
    bind_socket,
    connect_socket,
    recv_frame,
    recv_message,
    requests_to_wire,
    results_from_wire,
    send_frame,
    send_message,
)
from repro.serving.executors import (
    Executor,
    InlineExecutor,
    ThreadExecutor,
    _fork_context,
)
from repro.serving.protocol import QueryRequest, QueryResult, is_retryable

__all__ = [
    "GraphClient",
    "GraphServer",
    "RemoteShard",
    "ReplicatedShard",
    "ShardHost",
    "connect",
    "serve",
]

_STARTUP_TIMEOUT_SECONDS = 60.0

#: Default per-request timeout on router↔shard links: long enough for
#: any §V query at this scale, short enough that a hung replica is
#: abandoned for a peer instead of stalling a batch forever.
DEFAULT_SHARD_TIMEOUT = 30.0

#: Replica backoff after a link failure: ``base * 2**(failures-1)``
#: seconds, capped.  Backoff gates *selection* (a cooling replica is
#: tried last), it never sleeps in-call.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


# ----------------------------------------------------------------------
# Shard server child process
# ----------------------------------------------------------------------
def _shard_process_main(source: Any, shard: int, conn: Any, codec: str,
                        cache_size: Optional[int],
                        pipeline: Optional[int]) -> None:
    """Decode one shard, warm it, serve it forever on a loopback port.

    ``source`` is either a
    :class:`~repro.encoding.container.DecodedContainer` (the child
    materializes exactly shard ``shard`` out of the fork-inherited
    mapping — the parent never copies any blob) or a single-grammar
    buffer (``shard`` is 0).
    """
    from repro.api import DEFAULT_CACHE_SIZE, CompressedGraph
    from repro.encoding.container import DecodedContainer

    blob = (source.shard(shard)
            if isinstance(source, DecodedContainer) else source)
    handle = CompressedGraph.from_bytes(
        blob, cache_size=(DEFAULT_CACHE_SIZE if cache_size is None
                          else cache_size))
    handle.warm()
    listener, endpoint = bind_socket("127.0.0.1:0")
    conn.send(endpoint)
    conn.close()
    info = {
        "type": "shard",
        "nodes": handle.node_count(),
        "edges": handle.edge_count(),
        # Terminal label names, so a proxy-backed router can step
        # pattern DFAs over boundary-edge labels without the alphabet.
        "labels": [[label, handle.alphabet.name(label)]
                   for label in handle.alphabet.terminals()],
    }
    # Blocks until the parent terminates us; an unexpected listener
    # death surfaces as a nonzero exit instead of a silent idle child.
    loop = ServerLoop(listener, handle, InlineExecutor(), codec, info,
                      pipeline=pipeline)
    loop.run()
    if loop.fault is not None:
        raise loop.fault


# ----------------------------------------------------------------------
# Reply settlement (shared by the strict and pipelined clients)
# ----------------------------------------------------------------------
def _settle_results(wire: List[Dict[str, Any]],
                    reply: Dict[str, Any]) -> List[QueryResult]:
    """A ``results`` reply -> one result per shipped request, in order."""
    if reply.get("op") != "results":
        raise WireError(f"expected results, got {reply.get('op')!r}")
    by_id = {result.id: result
             for result in results_from_wire(reply.get("results", []))}
    results: List[QueryResult] = []
    for entry in wire:
        result = by_id.get(entry["id"])
        if result is None:
            result = QueryResult(id=entry["id"],
                                 error="server returned no answer "
                                       "for this request")
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Socket conversations: strict and multiplexed
# ----------------------------------------------------------------------
class _WireConnection:
    """One lock-guarded request/response socket conversation."""

    def __init__(self, address: Union[str, tuple], codec: str,
                 timeout: Optional[float]) -> None:
        self._address = address
        self._codec = codec
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        #: Completed request/response exchanges on this connection —
        #: the router's unit of wire cost (tests assert budgets on it).
        self.round_trips = 0

    def _socket(self) -> socket.socket:
        if self._sock is None:
            self._sock = connect_socket(self._address, self._timeout)
        return self._sock

    def _drop(self) -> None:
        """Close and forget the socket (caller holds the lock)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def round_trip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.round_trips += 1
            sock = self._socket()
            try:
                send_message(sock, message, self._codec)
                reply = recv_message(sock)
            except FrameError:
                # Desynchronized stream: drop the connection so the
                # next call starts clean, then surface the failure.
                self._drop()
                raise
            except socket.timeout as exc:
                # A late reply would desync the stream — the link is
                # unusable either way.
                self._drop()
                raise RequestTimeout(
                    f"no reply from {self._address!r} within "
                    f"{self._timeout}s") from exc
            except OSError as exc:
                self._drop()
                raise ConnectionLost(
                    f"connection to {self._address!r} failed "
                    f"(errno {exc.errno}): {exc}") from exc
            if reply is None:
                # A clean close instead of a reply: drop the dead
                # socket so the next call reconnects instead of
                # reusing it.
                self._drop()
        if reply is None:
            raise ConnectionLost(f"server at {self._address!r} closed "
                                 f"the connection before replying")
        if reply.get("op") == "error":
            raise WireError(reply.get("message", "server error"))
        return reply

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None


class _MuxConnection:
    """One pipelined socket conversation: many frames in flight.

    Every outgoing message is sequence-tagged; a daemon reader thread
    correlates replies back to their futures by sequence id, in
    whatever order the server finishes them.  One lock serializes
    sends and the pending table — receives never hold it, so a slow
    reply blocks nothing.

    Failure discipline (the client-visible contracts the tests pin):

    * a server that dies mid-conversation **fails every pending
      future** instead of leaving callers hung;
    * a reply whose sequence id was never issued is a protocol
      violation — the connection is poisoned and every call after it
      raises;
    * only :meth:`close` is a deliberate shutdown; any other socket
      death surfaces as :class:`~repro.exceptions.ReproError`
      carrying the errno, never a silent return.
    """

    def __init__(self, address: Union[str, tuple], codec: str,
                 timeout: Optional[float]) -> None:
        self._address = address
        self._codec = codec
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._seq = itertools.count()
        self._pending: Dict[int, "Future[Dict[str, Any]]"] = {}
        self._closed = False
        self._fault: Optional[ReproError] = None
        #: Completed request/reply exchanges (same unit as the strict
        #: connection's counter: one frame out, one frame back).
        self.round_trips = 0

    # -- sending -------------------------------------------------------
    def submit(self, message: Dict[str, Any]
               ) -> "Future[Dict[str, Any]]":
        """Ship one sequence-tagged frame; the reply as a future."""
        future: "Future[Dict[str, Any]]" = Future()
        future.set_running_or_notify_cancel()
        with self._lock:
            if self._fault is not None:
                raise self._fault
            if self._closed:
                # Deliberately closed — possibly under a concurrent
                # caller's feet during failover, so the failure is
                # retryable: the caller's next attempt gets a fresh
                # connection (or a peer replica).
                raise ConnectionLost("connection is closed")
            sock = self._ensure_socket()
            seq = next(self._seq)
            self._pending[seq] = future
            try:
                send_frame(sock, message, self._codec, seq=seq)
            except OSError as exc:
                self._pending.pop(seq, None)
                self._fault = ConnectionLost(
                    f"send to {self._address!r} failed unexpectedly "
                    f"(errno {exc.errno}): {exc}")
                raise self._fault from exc
        return future

    def _ensure_socket(self) -> socket.socket:
        if self._sock is None:
            sock = connect_socket(self._address, self._timeout)
            # The reader owns receives and must block indefinitely
            # between replies; client-level timeouts are enforced on
            # the futures, not the socket.
            sock.settimeout(None)
            self._sock = sock
            threading.Thread(target=self._reader_main, args=(sock,),
                             daemon=True,
                             name="repro-client-reader").start()
        return self._sock

    # -- receiving (the reader thread) ---------------------------------
    def _reader_main(self, sock: socket.socket) -> None:
        fault: Optional[ReproError] = None
        try:
            while True:
                try:
                    received = recv_frame(sock)
                except (FrameError, WireError) as exc:
                    if not self._closed:
                        fault = exc
                    return
                except OSError as exc:
                    if not self._closed:
                        fault = ConnectionLost(
                            f"connection to {self._address!r} failed "
                            f"unexpectedly (errno {exc.errno}): {exc}")
                    return
                if received is None:  # clean close on a boundary
                    with self._lock:
                        if self._pending and not self._closed:
                            fault = ConnectionLost(
                                f"server at {self._address!r} closed "
                                f"the connection with "
                                f"{len(self._pending)} requests in "
                                f"flight")
                    return
                seq, message = received
                if seq is None:
                    # Untagged frames on a pipelined connection are
                    # connection-level: a fatal server error (e.g. an
                    # oversized frame verdict) or a protocol breach.
                    if message.get("op") == "error":
                        fault = WireError(
                            message.get("message", "server error"))
                    else:
                        fault = WireError(
                            "untagged reply on a pipelined connection")
                    return
                with self._lock:
                    future = self._pending.pop(seq, None)
                if future is None:
                    fault = WireError(
                        f"server replied to sequence id {seq}, which "
                        f"was never issued on this connection")
                    return
                self.round_trips += 1
                if message.get("op") == "error":
                    future.set_exception(WireError(
                        message.get("message", "server error")))
                else:
                    future.set_result(message)
        finally:
            self._retire(sock, fault)

    def _retire(self, sock: socket.socket,
                fault: Optional[ReproError]) -> None:
        """Tear one socket down: record the fault, fail the pending."""
        with self._lock:
            if fault is not None and not self._closed:
                self._fault = fault
            if self._sock is sock:
                self._sock = None
            pending = list(self._pending.values())
            self._pending.clear()
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
        failure = fault if fault is not None else ConnectionLost(
            "connection closed with requests in flight")
        for future in pending:
            if not future.done():
                future.set_exception(failure)

    # -- lifecycle -----------------------------------------------------
    @property
    def fault(self) -> Optional[ReproError]:
        """The unexpected failure that poisoned this connection."""
        return self._fault

    def close(self) -> None:
        with self._lock:
            self._closed = True
            sock = self._sock
            self._sock = None
        if sock is not None:
            try:
                sock.close()  # wakes the reader, which retires cleanly
            except OSError:  # pragma: no cover
                pass


class GraphClient:
    """Client for a served graph: typed, legacy and one-shot surfaces.

    The default client is strict request–response on one connection —
    simple, and exactly what scripts and the CLI need.  With
    ``pipeline=True`` it becomes a multiplexing client: every frame
    is sequence-tagged, :meth:`execute_async` returns a future, many
    batches ride each connection concurrently, and ``pool_size``
    connections share the traffic round-robin (one is plenty until a
    single reader thread saturates).

    ``retries=N`` makes the blocking surface (``execute`` / ``batch``
    / ``query`` / ``info`` / ``ping``) survive up to N link deaths per
    call: on a retryable failure (see
    :func:`repro.serving.protocol.is_retryable`) the dead connection
    is replaced and the request resent — every §V query is a read, so
    a resend cannot double-apply anything.  ``execute_async`` stays
    single-shot (its caller owns the future's fate).
    """

    def __init__(self, address: Union[str, tuple], codec: str = "json",
                 timeout: Optional[float] = None,
                 pipeline: bool = False, pool_size: int = 1,
                 retries: int = 0) -> None:
        self.address = address
        self.pipeline = bool(pipeline)
        self._codec = codec
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._retired_trips = 0
        self._conn: Optional[_WireConnection] = None
        self._pool: List[_MuxConnection] = []
        if self.pipeline:
            self._pool = [_MuxConnection(address, codec, timeout)
                          for _ in range(max(1, int(pool_size)))]
            self._rr = itertools.count()
        else:
            if pool_size not in (None, 1):
                raise ReproError("pool_size > 1 needs pipeline=True "
                                 "(a strict client holds exactly one "
                                 "connection)")
            self._conn = _WireConnection(address, codec, timeout)

    # -- plumbing ------------------------------------------------------
    def _next_mux(self) -> _MuxConnection:
        return self._pool[next(self._rr) % len(self._pool)]

    def _await(self, future: "Future[Any]") -> Any:
        try:
            return future.result(self._timeout)
        except FutureTimeoutError:
            raise RequestTimeout(
                f"no reply from {self.address!r} within "
                f"{self._timeout}s") from None

    def _reset_links(self) -> None:
        """Replace every connection; completed-trip counters survive."""
        if self.pipeline:
            pool = self._pool
            self._pool = [_MuxConnection(self.address, self._codec,
                                         self._timeout)
                          for _ in pool]
            for conn in pool:
                self._retired_trips += conn.round_trips
                conn.close()
        else:
            conn, self._conn = self._conn, _WireConnection(
                self.address, self._codec, self._timeout)
            self._retired_trips += conn.round_trips
            conn.close()

    def _with_retries(self, attempt: Any) -> Any:
        for remaining in range(self._retries, -1, -1):
            try:
                return attempt()
            except (ReproError, OSError) as exc:
                if remaining == 0 or not is_retryable(exc):
                    raise
                self._reset_links()

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self.pipeline:
            return self._with_retries(
                lambda: self._await(self._next_mux().submit(message)))
        return self._with_retries(
            lambda: self._conn.round_trip(message))

    # -- typed ---------------------------------------------------------
    def execute(self, requests: Sequence[Union[QueryRequest,
                                               Sequence[Any]]]
                ) -> List[QueryResult]:
        """Ship a batch; one :class:`QueryResult` per request, in order.

        Per-request error semantics hold across the wire: a malformed
        or failing request errors alone, everything else is answered.
        """
        if self.pipeline:
            return self._with_retries(
                lambda: self._await(self.execute_async(requests)))
        wire = requests_to_wire(requests)
        if not wire:
            return []
        return _settle_results(
            wire, self._roundtrip({"op": "batch", "requests": wire}))

    def execute_async(self, requests: Sequence[Union[QueryRequest,
                                                     Sequence[Any]]]
                      ) -> "Future[List[QueryResult]]":
        """Ship a batch without waiting; results as a future.

        Requires ``pipeline=True``.  Many futures can be outstanding
        per connection; the server answers them as each batch
        completes, in any order, and the sequence tags route every
        reply to its future.
        """
        if not self.pipeline:
            raise ReproError("execute_async needs a pipelined client "
                             "(GraphClient(..., pipeline=True))")
        done: "Future[List[QueryResult]]" = Future()
        done.set_running_or_notify_cancel()
        wire = requests_to_wire(requests)
        if not wire:
            done.set_result([])
            return done
        inner = self._next_mux().submit({"op": "batch",
                                         "requests": wire})

        def settle(reply: "Future[Dict[str, Any]]") -> None:
            try:
                done.set_result(_settle_results(wire, reply.result()))
            except BaseException as exc:
                done.set_exception(exc)

        inner.add_done_callback(settle)
        return done

    # -- legacy-shaped -------------------------------------------------
    def batch(self, requests: Sequence[Sequence[Any]]) -> List[Any]:
        """Values in request order; raises the first error (legacy)."""
        return [result.unwrap() for result in self.execute(requests)]

    def query(self, kind: str, *args: Any) -> Any:
        """One query, unwrapped."""
        return self.execute([(kind, *args)])[0].unwrap()

    # -- control -------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """The server's self-description (type, shards, sizes)."""
        reply = self._roundtrip({"op": "info"})
        return {key: value for key, value in reply.items()
                if key != "op"}

    def ping(self) -> bool:
        """Liveness probe."""
        return self._roundtrip({"op": "ping"}).get("op") == "pong"

    @property
    def round_trips(self) -> int:
        """Request/response exchanges this client has performed."""
        if self.pipeline:
            live = sum(conn.round_trips for conn in self._pool)
        else:
            live = self._conn.round_trips
        return self._retired_trips + live

    def close(self) -> None:
        for conn in self._pool:
            conn.close()
        if self._conn is not None:
            self._conn.close()

    def __enter__(self) -> "GraphClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RemoteShard:
    """A shard handle living in another process, spoken to by socket.

    Duck-types the slice of :class:`repro.api.CompressedGraph` the
    sharded routing layer touches — ``batch``/``execute``, the
    neighborhood family, ``reachable``, ``degree``,
    ``connected_components``, the counts — by shipping each call to
    its shard server.  The answers come from the same grammar code
    the local handle would run, which is why router-served answers
    are bit-identical to in-process ones.

    The link is **pipelined by default**: concurrent router batches
    (the event loop's worker pool fanning out per-shard groups)
    multiplex over one sequence-tagged connection instead of
    queueing on a per-connection lock.
    """

    def __init__(self, address: Union[str, tuple], codec: str = "json",
                 timeout: Optional[float] = None,
                 pipeline: bool = True) -> None:
        self._client = GraphClient(address, codec=codec,
                                   timeout=timeout, pipeline=pipeline)
        self.address = address

    def info(self) -> Dict[str, Any]:
        """The shard server's self-description."""
        return self._client.info()

    # -- the wire format ----------------------------------------------
    def execute(self, requests: Sequence[Union[QueryRequest,
                                               Sequence[Any]]],
                executor: Optional[Executor] = None
                ) -> List[QueryResult]:
        return self._client.execute(requests)

    def batch(self, requests: Sequence[Sequence[Any]],
              parallel: bool = False,
              max_workers: Optional[int] = None) -> List[Any]:
        return self._client.batch(requests)

    def _single(self, kind: str, *args: Any) -> Any:
        return self._client.query(kind, *args)

    # -- the method surface the sharded router calls -------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        return self._single("out", node_id)

    def in_neighbors(self, node_id: int) -> List[int]:
        return self._single("in", node_id)

    def neighbors(self, node_id: int) -> List[int]:
        return self._single("neighborhood", node_id)

    def reachable(self, source_id: int, target_id: int) -> bool:
        return self._single("reach", source_id, target_id)

    def degree(self, node_id: Optional[int] = None,
               direction: str = "out") -> Any:
        if node_id is None:
            return self._single("degree")
        return self._single("degree", node_id, direction)

    def connected_components(self) -> int:
        return self._single("components")

    def path(self, source_id: int, target_id: int
             ) -> Optional[List[int]]:
        return self._single("path", source_id, target_id)

    def node_count(self) -> int:
        return self._single("nodes")

    def edge_count(self) -> int:
        return self._single("edges")

    # -- inert introspection (the router owns no shard state) ----------
    @property
    def round_trips(self) -> int:
        """Wire exchanges with this shard (a cost meter for tests)."""
        return self._client.round_trips

    @property
    def canonicalizations(self) -> int:
        return 0

    @property
    def index_built(self) -> bool:
        return True

    def close(self) -> None:
        self._client.close()


class _Replica:
    """One endpoint's failover state inside a :class:`ReplicatedShard`."""

    __slots__ = ("endpoint", "shard", "failures", "down_until",
                 "retired_trips")

    def __init__(self, endpoint: Union[str, tuple]) -> None:
        self.endpoint = endpoint
        self.shard: Optional[RemoteShard] = None
        self.failures = 0
        self.down_until = 0.0
        self.retired_trips = 0


class ReplicatedShard:
    """One logical shard behind N replica endpoints.

    Duck-types the same :class:`~repro.api.CompressedGraph` surface as
    :class:`RemoteShard`, so the sharded router (and the single-shard
    server) cannot tell a replicated shard from a lone one.  Reads are
    **round-robin load-balanced** across healthy replicas; a retryable
    link failure (:func:`repro.serving.protocol.is_retryable` — kill,
    hang past the per-request ``timeout``, truncation, reset) marks
    that replica *down* with exponential backoff, drops its poisoned
    connection, and resends the request to the next peer.  Backoff
    gates replica *selection* only — nothing here ever sleeps, and a
    cooling replica is still tried last rather than never (so a lone
    surviving replica is always used).

    When every replica fails one request, the sweep raises
    :class:`~repro.exceptions.ShardUnavailable` — a ``QueryError``, so
    batch execution reports it per-request instead of aborting.

    ``round_trips`` sums *completed* exchanges across replicas (the
    pipelined connections count replies, not sends), which is what
    keeps the router's wire-cost budgets **per logical shard**: a
    failed attempt that was retried onto a peer contributes exactly
    one completed exchange, no matter how many replicas exist.
    """

    def __init__(self, endpoints: Sequence[Union[str, tuple]],
                 codec: str = "json",
                 timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT,
                 pipeline: bool = True,
                 shard_index: Optional[int] = None) -> None:
        if not endpoints:
            raise ReproError("a replicated shard needs at least one "
                             "endpoint")
        self._codec = codec
        self._timeout = timeout
        self._pipeline = pipeline
        self.shard_index = shard_index
        self._replicas = [_Replica(endpoint) for endpoint in endpoints]
        self._rr = itertools.count()
        self._lock = threading.Lock()
        #: Retryable link failures that were resent to a peer — the
        #: observable proof a fault-injection lane actually failed over.
        self.failovers = 0

    # -- replica selection and failover --------------------------------
    def _plan(self, now: float) -> List[_Replica]:
        """All replicas, rotated round-robin, healthy ones first."""
        start = next(self._rr) % len(self._replicas)
        rotated = (self._replicas[start:] + self._replicas[:start])
        healthy = [r for r in rotated if r.down_until <= now]
        cooling = [r for r in rotated if r.down_until > now]
        # Cooling replicas last, least-recently-failed first: if every
        # peer is down too, the one most likely to have recovered is
        # retried first.
        return healthy + sorted(cooling, key=lambda r: r.down_until)

    def _ensure(self, replica: _Replica) -> RemoteShard:
        with self._lock:
            if replica.shard is None:
                replica.shard = RemoteShard(
                    replica.endpoint, codec=self._codec,
                    timeout=self._timeout, pipeline=self._pipeline)
            return replica.shard

    def _mark_down(self, replica: _Replica, shard: RemoteShard) -> None:
        with self._lock:
            replica.failures += 1
            replica.down_until = time.monotonic() + min(
                _BACKOFF_CAP,
                _BACKOFF_BASE * (2 ** (replica.failures - 1)))
            if replica.shard is shard:
                # The poisoned connection cannot be reused; a fresh
                # RemoteShard reconnects on the next attempt.
                replica.retired_trips += shard.round_trips
                replica.shard = None
        shard.close()

    def _mark_up(self, replica: _Replica) -> None:
        if replica.failures:
            with self._lock:
                replica.failures = 0
                replica.down_until = 0.0

    def _attempt(self, call: Any) -> Any:
        """Run ``call(shard)`` against replicas until one answers."""
        failures: List[str] = []
        plan = self._plan(time.monotonic())
        for replica in plan:
            shard = self._ensure(replica)
            try:
                value = call(shard)
            except (ReproError, OSError) as exc:
                if not is_retryable(exc):
                    raise
                self._mark_down(replica, shard)
                failures.append(f"{replica.endpoint}: {exc}")
                if len(failures) < len(plan):
                    with self._lock:
                        self.failovers += 1
                continue
            self._mark_up(replica)
            return value
        raise ShardUnavailable(
            f"shard {self.shard_index if self.shard_index is not None else '?'}: "
            f"all {len(self._replicas)} replica"
            f"{'s' if len(self._replicas) != 1 else ''} unavailable "
            f"({'; '.join(failures)})")

    # -- the wire surface ----------------------------------------------
    def execute(self, requests: Sequence[Union[QueryRequest,
                                               Sequence[Any]]],
                executor: Optional[Executor] = None
                ) -> List[QueryResult]:
        return self._attempt(lambda shard: shard.execute(requests))

    def batch(self, requests: Sequence[Sequence[Any]],
              parallel: bool = False,
              max_workers: Optional[int] = None) -> List[Any]:
        return self._attempt(lambda shard: shard.batch(requests))

    def _single(self, kind: str, *args: Any) -> Any:
        return self._attempt(lambda shard: shard._single(kind, *args))

    def info(self) -> Dict[str, Any]:
        """Any live replica's self-description."""
        return self._attempt(lambda shard: shard.info())

    # -- the method surface the sharded router calls -------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        return self._single("out", node_id)

    def in_neighbors(self, node_id: int) -> List[int]:
        return self._single("in", node_id)

    def neighbors(self, node_id: int) -> List[int]:
        return self._single("neighborhood", node_id)

    def reachable(self, source_id: int, target_id: int) -> bool:
        return self._single("reach", source_id, target_id)

    def degree(self, node_id: Optional[int] = None,
               direction: str = "out") -> Any:
        if node_id is None:
            return self._single("degree")
        return self._single("degree", node_id, direction)

    def connected_components(self) -> int:
        return self._single("components")

    def path(self, source_id: int, target_id: int
             ) -> Optional[List[int]]:
        return self._single("path", source_id, target_id)

    def node_count(self) -> int:
        return self._single("nodes")

    def edge_count(self) -> int:
        return self._single("edges")

    # -- introspection -------------------------------------------------
    @property
    def endpoints(self) -> List[Union[str, tuple]]:
        return [replica.endpoint for replica in self._replicas]

    @property
    def replica_round_trips(self) -> List[int]:
        """Completed exchanges per replica endpoint (for tests)."""
        with self._lock:
            return [replica.retired_trips
                    + (replica.shard.round_trips
                       if replica.shard is not None else 0)
                    for replica in self._replicas]

    @property
    def round_trips(self) -> int:
        """Completed wire exchanges for this *logical* shard."""
        return sum(self.replica_round_trips)

    @property
    def canonicalizations(self) -> int:
        return 0

    @property
    def index_built(self) -> bool:
        return True

    def close(self) -> None:
        with self._lock:
            shards = [replica.shard for replica in self._replicas
                      if replica.shard is not None]
            for replica in self._replicas:
                replica.shard = None
        for shard in shards:
            shard.close()


# ----------------------------------------------------------------------
# A standalone shard server (the `shard-serve` building block)
# ----------------------------------------------------------------------
class ShardHost:
    """Serve exactly one shard of a container, standalone.

    The building block of a manifest deployment: start N hosts per
    shard on any machines (``repro shard-serve graph.grps --shard 2``),
    write a :class:`~repro.serving.cluster.ClusterManifest` naming
    their endpoints, and spawn routers from the manifest — no fork
    relationship anywhere.  Each host reports the container build it
    decoded (``grps_hash``) and its deployment ``epoch`` in its
    ``info`` reply, which is how a router proves a manifest is neither
    stale nor pointed at the wrong build.
    """

    def __init__(self, path: Union[str, Path, bytes], shard: int = 0,
                 address: str = "127.0.0.1:0", codec: str = "json",
                 epoch: int = 0, cache_size: Optional[int] = None,
                 pipeline: Optional[int] = None) -> None:
        from repro.encoding.container import map_file
        self._data = (bytes(path) if isinstance(path, (bytes, bytearray))
                      else map_file(path))
        self._shard = int(shard)
        self._address = address
        self._codec = codec
        self._epoch = int(epoch)
        self._cache_size = cache_size
        self._pipeline = pipeline
        self._listener: Optional[socket.socket] = None
        self._loop: Optional[ServerLoop] = None
        self.endpoint: Optional[str] = None
        #: The lazily decoded "GRPS" framing (``None`` before
        #: :meth:`start` and for single-grammar containers).  Its
        #: ``materialized_bytes`` counter is how the cold-open bench
        #: gate verifies a host copies only its own shard.
        self.container: Optional[Any] = None

    @property
    def fault(self) -> Optional[ReproError]:
        return self._loop.fault if self._loop is not None else None

    def start(self) -> "ShardHost":
        if self._listener is not None:
            return self
        from repro.api import DEFAULT_CACHE_SIZE, CompressedGraph
        from repro.encoding.container import (
            decode_sharded_container,
            is_sharded_container,
        )

        if is_sharded_container(self._data):
            # Lazy decode: only the owned shard's blob is copied out
            # of the (mmap-backed) container.
            container = decode_sharded_container(self._data)
            self.container = container
            if not 0 <= self._shard < container.num_shards:
                raise ReproError(
                    f"shard index {self._shard} out of range "
                    f"(container has {container.num_shards} shards)")
            blob = container.shard(self._shard)
        else:
            if self._shard != 0:
                raise ReproError(
                    f"shard index {self._shard} out of range (a "
                    f"single-grammar container has exactly shard 0)")
            blob = self._data
        handle = CompressedGraph.from_bytes(
            blob, cache_size=(DEFAULT_CACHE_SIZE
                              if self._cache_size is None
                              else self._cache_size))
        handle.warm()
        self._listener, self.endpoint = bind_socket(self._address)
        info = {
            "type": "shard",
            "shard": self._shard,
            "epoch": self._epoch,
            "grps_hash": container_hash(self._data),
            "nodes": handle.node_count(),
            "edges": handle.edge_count(),
            "labels": [[label, handle.alphabet.name(label)]
                       for label in handle.alphabet.terminals()],
        }
        self._loop = ServerLoop(self._listener, handle,
                                InlineExecutor(), self._codec, info,
                                pipeline=self._pipeline).start()
        return self

    def close(self) -> None:
        if self._loop is not None:
            self._loop.stop()
            self._loop = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        if self.endpoint and self.endpoint.startswith("unix:"):
            try:
                os.unlink(self.endpoint[len("unix:"):])
            except OSError:
                pass

    def __enter__(self) -> "ShardHost":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class GraphServer:
    """Serve a compressed container: shard endpoints + a router.

    Two deployment shapes share this class:

    * **Forked** (the default): one loopback shard-server process per
      shard — ``replicas=N`` forks N per shard, and the router
      load-balances reads across them.
    * **Manifest** (``manifest=``): the shard servers already run —
      on this machine or any other, started by ``repro shard-serve``
      or :class:`ShardHost` — and a
      :class:`~repro.serving.cluster.ClusterManifest` names their
      endpoints.  Nothing is forked; the router validates that every
      reachable replica serves the same container build
      (``grps_hash``) and deployment generation (``epoch``) as the
      manifest, and that at least one replica per shard is alive.

    Either way every shard link is a :class:`ReplicatedShard`:
    round-robin reads, reconnect/retry with backoff onto a peer when
    a replica drops, per-request ``shard_timeout``
    (default :data:`DEFAULT_SHARD_TIMEOUT` seconds).

    ``start()`` is idempotent-safe to pair with ``close()`` (also a
    context manager).  The ``endpoint`` attribute is the canonical
    client address — with ``port=0`` the OS picks one, so tests and
    benchmarks never race over a fixed port.  ``pipeline`` bounds the
    concurrently evaluating batches per server (the event loop's
    worker pool; default :data:`repro.serving.aio.DEFAULT_PIPELINE`).
    """

    def __init__(self, path: Union[str, Path, bytes, None] = None,
                 address: str = "127.0.0.1:0",
                 codec: str = "json",
                 cache_size: Optional[int] = None,
                 pipeline: Optional[int] = None,
                 replicas: int = 1,
                 manifest: Union[str, Path, ClusterManifest,
                                 None] = None,
                 shard_timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT
                 ) -> None:
        if manifest is not None and not isinstance(manifest,
                                                   ClusterManifest):
            manifest = ClusterManifest.load(manifest)
        self._manifest = manifest
        if path is None:
            if manifest is None:
                raise ReproError("GraphServer needs a container (path "
                                 "or bytes) or a cluster manifest")
            if manifest.container is None:
                raise ReproError("the manifest names no container "
                                 "file; pass the container explicitly "
                                 "(GraphServer(path, manifest=...))")
            path = manifest.container
        from repro.encoding.container import map_file
        self._data = (bytes(path) if isinstance(path, (bytes, bytearray))
                      else map_file(path))
        #: Lazily decoded "GRPS" framing (set by :meth:`start` for
        #: sharded containers): its ``materialized_bytes`` counter
        #: shows how little of the file the router itself copied.
        self.container: Optional[Any] = None
        if int(replicas) < 1:
            raise ReproError(f"replicas must be >= 1, got {replicas}")
        self._address = address
        self._codec = codec
        self._cache_size = cache_size
        self._pipeline = pipeline
        self._replicas = int(replicas)
        self._shard_timeout = shard_timeout
        #: Forked mode: ``_process_groups[shard][replica]`` — empty in
        #: manifest mode (the shard servers are not our children).
        self._process_groups: List[List[Any]] = []
        self._processes: List[Any] = []
        self._proxies: List[ReplicatedShard] = []
        self._listener: Optional[socket.socket] = None
        self._loop: Optional[ServerLoop] = None
        self._service: Optional[Any] = None
        self.endpoint: Optional[str] = None
        self.num_shards = 0

    @property
    def service(self) -> Optional[Any]:
        """The router-side service answering client batches.

        For a sharded container this is the proxy-backed
        :class:`~repro.sharding.ShardedCompressedGraph` (its planner
        and closure are live objects — tests and operators can
        inspect or pin the cross-shard strategy); for a single
        grammar it is the lone :class:`ReplicatedShard`.  ``None``
        until :meth:`start`.
        """
        return self._service

    @property
    def fault(self) -> Optional[ReproError]:
        """An unexpected serving-loop death (listener failure), or
        ``None`` while healthy or after a deliberate :meth:`close`."""
        return self._loop.fault if self._loop is not None else None

    # ------------------------------------------------------------------
    def start(self) -> "GraphServer":
        """Acquire shard endpoints, build the router, begin accepting.

        Forked mode spawns the shard-server children; manifest mode
        validates the pre-existing endpoints instead.  Idempotent: a
        started server (``serve()`` returns one) is not started again
        by ``with server:``.
        """
        if self._listener is not None:
            return self
        from repro.api import DEFAULT_CACHE_SIZE
        from repro.encoding.container import (
            decode_sharded_container,
            is_sharded_container,
        )

        cache_size = (DEFAULT_CACHE_SIZE if self._cache_size is None
                      else self._cache_size)
        sharded = is_sharded_container(self._data)
        container = None
        if sharded:
            from repro.partition import BoundaryClosure
            from repro.sharding import (
                ShardedCompressedGraph,
                _decode_meta,
                _decode_rpq_closures,
            )
            # Lazy decode: the router itself materializes only the
            # meta and closure trailers; shard blobs are copied by the
            # forked children (each exactly its own — the parent's
            # mmap is inherited), or not at all in manifest mode.
            container = decode_sharded_container(self._data)
            self.container = container
            shard_count = container.num_shards
            (shard_nodes, boundary_edges, blocks, extrema,
             degree_error, simple, partitioner) = _decode_meta(
                container.meta, shard_count)
            # A persisted closure means a cold-started router answers
            # cross-shard reach without ever re-probing the shards.
            closure = (BoundaryClosure.from_bytes(container.closure)
                       if container.has_closure else None)
            rpq_closures = (_decode_rpq_closures(container.rpq_closures)
                            if container.has_rpq_closures else None)
        else:
            shard_count = 1
        try:
            if self._manifest is not None:
                link_codec = self._manifest.codec
                endpoint_groups = self._manifest_endpoints(shard_count)
            else:
                link_codec = self._codec
                endpoint_groups = self._spawn_shards(
                    container if container is not None else self._data,
                    shard_count)
            self._proxies = [
                ReplicatedShard(group, codec=link_codec,
                                timeout=self._shard_timeout,
                                shard_index=index)
                for index, group in enumerate(endpoint_groups)]
            if self._manifest is not None:
                self._validate_cluster()
            if sharded:
                # The router owns no grammar, so boundary-edge label
                # names (RPQ DFA steps, pattern-count corrections)
                # come from the shard servers' startup info.
                label_names: Dict[int, Optional[str]] = {}
                for proxy in self._proxies:
                    for label, name in proxy.info().get("labels", []):
                        label_names.setdefault(label, name)
                service: Any = ShardedCompressedGraph(
                    list(self._proxies), None, boundary_edges, blocks,
                    extrema, degree_error, shard_nodes, simple=simple,
                    partitioner=partitioner, cache_size=cache_size,
                    closure=closure,
                    closure_persisted=closure is not None,
                    label_names=sorted(label_names.items()),
                    rpq_closures=rpq_closures,
                    rpq_closures_persisted=rpq_closures is not None)
                executor: Executor = ThreadExecutor()
                info = {
                    "type": "sharded",
                    "shards": shard_count,
                    "nodes": sum(shard_nodes),
                    "boundary_edges": len(boundary_edges),
                    "partitioner": partitioner,
                    "closure": closure is not None,
                    "replicas": [len(group)
                                 for group in endpoint_groups],
                }
            else:
                proxy = self._proxies[0]
                service = proxy
                executor = InlineExecutor()
                info = {"type": "single", "shards": 1,
                        "replicas": [len(endpoint_groups[0])],
                        **{key: value
                           for key, value in proxy.info().items()
                           if key in ("nodes", "edges")}}
            if self._manifest is not None:
                info["epoch"] = self._manifest.epoch
        except Exception:
            # e.g. a closure/meta mismatch or a manifest validation
            # failure: don't leak the shard processes forked above.
            self.close()
            raise
        self.num_shards = shard_count
        self._service = service
        self._listener, self.endpoint = bind_socket(self._address)
        self._loop = ServerLoop(self._listener, service, executor,
                                self._codec, info,
                                pipeline=self._pipeline).start()
        return self

    def _manifest_endpoints(self, shard_count: int) -> List[List[str]]:
        """The manifest's endpoint groups, shape-checked + hash-checked."""
        manifest = self._manifest
        manifest.verify_container(self._data)
        if manifest.num_shards != shard_count:
            raise ManifestError(
                f"manifest lists {manifest.num_shards} shards but the "
                f"container holds {shard_count}")
        return [list(group) for group in manifest.shards]

    def _validate_cluster(self) -> None:
        """Probe every manifest endpoint before routing through it.

        Per shard, at least one replica must be reachable, and every
        *reachable* replica must self-describe as the right shard of
        the right container build (``grps_hash``) at the manifest's
        ``epoch`` — a stale manifest (or one pointing at a foreign
        deployment) fails here, loudly, before any query is routed.
        """
        manifest = self._manifest
        for index, proxy in enumerate(self._proxies):
            reachable = 0
            for endpoint in proxy.endpoints:
                client = GraphClient(endpoint, codec=manifest.codec,
                                     timeout=5.0)
                try:
                    info = client.info()
                except (ReproError, OSError) as exc:
                    if not is_retryable(exc):
                        raise
                    continue  # dead replica: failover's job, not ours
                finally:
                    client.close()
                reachable += 1
                if info.get("type") != "shard" or \
                        info.get("shard") != index:
                    raise ManifestError(
                        f"endpoint {endpoint!r} serves "
                        f"{info.get('type')!r} shard "
                        f"{info.get('shard')!r}, manifest expects "
                        f"shard {index}")
                if info.get("grps_hash") != manifest.grps_hash:
                    raise ManifestError(
                        f"endpoint {endpoint!r} serves container "
                        f"build {str(info.get('grps_hash'))[:12]}…, "
                        f"manifest names "
                        f"{manifest.grps_hash[:12]}…")
                if info.get("epoch") != manifest.epoch:
                    raise ManifestError(
                        f"stale manifest: endpoint {endpoint!r} "
                        f"serves epoch {info.get('epoch')!r}, "
                        f"manifest says {manifest.epoch}")
            if reachable == 0:
                raise ManifestError(
                    f"no reachable replica for shard {index} "
                    f"(tried {list(proxy.endpoints)})")

    def _spawn_shards(self, source: Any, shard_count: int
                      ) -> List[List[str]]:
        """Fork ``replicas`` loopback servers per shard.

        ``source`` (a ``DecodedContainer`` or a single-grammar buffer)
        is passed to the children whole: fork start-method arguments
        are inherited, not pickled, so each child copies only its own
        shard blob out of the shared mapping.
        """
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX
            raise ReproError("socket serving requires a platform with "
                             "fork (POSIX)")
        groups: List[List[str]] = []
        for shard in range(shard_count):
            endpoints: List[str] = []
            processes: List[Any] = []
            for _ in range(self._replicas):
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_shard_process_main,
                    args=(source, shard, child_conn, self._codec,
                          self._cache_size, self._pipeline),
                    daemon=True)
                process.start()
                child_conn.close()
                self._processes.append(process)
                processes.append(process)
                if not parent_conn.poll(_STARTUP_TIMEOUT_SECONDS):
                    self.close()
                    raise ReproError(
                        "shard server failed to start within "
                        f"{_STARTUP_TIMEOUT_SECONDS:.0f}s")
                endpoints.append(parent_conn.recv())
                parent_conn.close()
            groups.append(endpoints)
            self._process_groups.append(processes)
        return groups

    def kill_replica(self, shard: int, replica: int = 0) -> str:
        """Terminate one forked replica process (fault injection).

        Returns the killed replica's endpoint.  The router keeps
        routing: the dead link fails retryably and its queries fail
        over to the shard's surviving replicas.  Only meaningful in
        forked mode — manifest-mode shard servers are not children.
        """
        if not self._process_groups:
            raise ReproError("kill_replica needs forked shard "
                             "processes (not a manifest deployment)")
        if not 0 <= shard < len(self._process_groups):
            raise ReproError(f"shard index {shard} out of range")
        group = self._process_groups[shard]
        if not 0 <= replica < len(group):
            raise ReproError(f"replica index {replica} out of range "
                             f"(shard {shard} has {len(group)} "
                             f"replicas)")
        process = group[replica]
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        return self._proxies[shard].endpoints[replica]

    # ------------------------------------------------------------------
    def connect(self, timeout: Optional[float] = None,
                pipeline: bool = False,
                pool_size: int = 1) -> GraphClient:
        """A client for this server's public endpoint."""
        if self.endpoint is None:
            raise ReproError("server is not started")
        return GraphClient(self.endpoint, codec=self._codec,
                           timeout=timeout, pipeline=pipeline,
                           pool_size=pool_size)

    def close(self) -> None:
        """Stop accepting, drop shard links, terminate shard processes.

        This is the *deliberate* shutdown path: the serving loop is
        flagged before its listener closes, so an orderly teardown is
        never misreported as a listener failure.
        """
        if self._loop is not None:
            self._loop.stop()
            self._loop = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        for proxy in self._proxies:
            proxy.close()
        self._proxies = []
        self._service = None
        for process in self._processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        self._processes = []
        self._process_groups = []
        # Unix-domain endpoints leave a filesystem entry behind.
        if self.endpoint and self.endpoint.startswith("unix:"):
            try:
                os.unlink(self.endpoint[len("unix:"):])
            except OSError:
                pass

    def __enter__(self) -> "GraphServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Module-level conveniences (the documented entry points)
# ----------------------------------------------------------------------
def serve(path: Union[str, Path, bytes, None] = None,
          address: str = "127.0.0.1:0",
          codec: str = "json",
          cache_size: Optional[int] = None,
          pipeline: Optional[int] = None,
          replicas: int = 1,
          manifest: Union[str, Path, ClusterManifest, None] = None,
          shard_timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT
          ) -> GraphServer:
    """Start serving a container; returns the running server.

    ``serve(...)`` / ``with serve(...) as server`` — the server
    accepts in a background thread, shard processes run until
    :meth:`GraphServer.close`.  ``pipeline`` bounds the concurrently
    evaluating batches per server process; ``replicas=N`` forks N
    processes per shard (round-robin reads, automatic failover);
    ``manifest=`` routes to pre-existing shard servers named by a
    :class:`~repro.serving.cluster.ClusterManifest` instead of
    forking anything.
    """
    return GraphServer(path, address=address, codec=codec,
                       cache_size=cache_size, pipeline=pipeline,
                       replicas=replicas, manifest=manifest,
                       shard_timeout=shard_timeout).start()


def connect(address: Union[str, tuple], codec: str = "json",
            timeout: Optional[float] = None,
            pipeline: bool = False,
            pool_size: int = 1,
            retries: int = 0) -> GraphClient:
    """Connect to a :func:`serve` endpoint.

    ``pipeline=True`` returns the multiplexing client (sequence-tagged
    frames, ``execute_async``, ``pool_size`` pooled connections);
    ``retries=N`` resends a request on up to N link deaths."""
    return GraphClient(address, codec=codec, timeout=timeout,
                       pipeline=pipeline, pool_size=pool_size,
                       retries=retries)
