"""Socket serving: shard server processes, the router, the client.

The deployment shape the paper's query family implies — grammars are
small, queries are ``O(|G|)``, so a compressed graph can sit resident
in memory and *answer traffic* — becomes concrete here:

:class:`GraphServer` (``serve()``)
    Serves a ``.grpr``/``.grps`` container on a socket endpoint.  For
    a sharded container it forks **one process per shard** (each
    decodes only its own shard's bytes, warms its index and serves
    its local §V family on a loopback socket) plus a **router** in
    the calling process: a proxy-backed
    :class:`~repro.sharding.ShardedCompressedGraph` whose "shard
    handles" are :class:`RemoteShard` socket clients.  Incoming
    batches are planned once (dedup + router-side LRU pre-filter) and
    the per-shard groups are multiplexed over the shard links in
    parallel; cross-shard queries run the exact routed/merged
    algorithms the in-process handle uses, so answers are
    bit-identical to local evaluation.
:class:`GraphClient` (``connect()``)
    The wire-codec client: typed ``execute()``, legacy-shaped
    ``batch()``, single-shot ``query()``, ``info()``/``ping()``.
:class:`RemoteShard`
    A shard-shaped proxy speaking the same wire protocol; the sharded
    handle cannot tell it from a local :class:`CompressedGraph`.

Endpoints are ``"host:port"`` (TCP, loopback by default) or
``"unix:/path"``.  Both frames and payloads come from
:mod:`repro.serving.codec`; one process per shard means shard builds,
crashes and restarts are isolated, and the router process never holds
a single decoded grammar.
"""

from __future__ import annotations

import os
import socket
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import QueryError, ReproError
from repro.serving.codec import (
    FrameError,
    WireError,
    bind_socket,
    connect_socket,
    recv_message,
    requests_to_wire,
    results_from_wire,
    results_to_wire,
    send_message,
    wire_to_requests,
)
from repro.serving.executors import (
    Executor,
    InlineExecutor,
    ThreadExecutor,
    _fork_context,
)
from repro.serving.protocol import QueryRequest, QueryResult

__all__ = [
    "GraphClient",
    "GraphServer",
    "RemoteShard",
    "connect",
    "serve",
]

_ACCEPT_POLL_SECONDS = 0.2
_STARTUP_TIMEOUT_SECONDS = 60.0


# ----------------------------------------------------------------------
# The connection loop every server (shard or router) runs
# ----------------------------------------------------------------------
def _serve_connection(service: Any, conn: socket.socket,
                      executor: Executor, codec: str,
                      info: Dict[str, Any]) -> None:
    """Answer one client until it disconnects.

    ``batch`` messages run through ``service.execute`` with the
    server's executor; request ids are echoed back on the results, so
    the client can correlate answers however the server reordered the
    work.  Protocol-level failures (undecodable frames) answer with an
    ``error`` message instead of killing the connection.
    """
    try:
        while True:
            try:
                message = recv_message(conn)
            except FrameError:
                return  # stream desynchronized: only closing is safe
            except WireError as exc:
                # The payload was fully consumed before the decode
                # failed — the stream is intact, tell the peer.
                send_message(conn, {"op": "error", "message": str(exc)},
                             codec)
                continue
            if message is None:
                return
            op = message.get("op")
            if op == "ping":
                send_message(conn, {"op": "pong"}, codec)
            elif op == "info":
                send_message(conn, {"op": "info_reply", **info}, codec)
            elif op == "batch":
                try:
                    pairs = wire_to_requests(
                        message.get("requests", []))
                except WireError as exc:
                    send_message(conn,
                                 {"op": "error", "message": str(exc)},
                                 codec)
                    continue
                # service.execute lets proxies forward whole batches
                # (RemoteShard ships them as one frame); in-process
                # services delegate right back to the executor.
                results = service.execute(
                    [request for _, request in pairs],
                    executor=executor)
                for (client_id, _), result in zip(pairs, results):
                    result.id = client_id
                send_message(conn, {"op": "results",
                                    "results": results_to_wire(results)},
                             codec)
            else:
                send_message(conn, {"op": "error",
                                    "message": f"unknown op {op!r}"},
                             codec)
    except (ConnectionError, BrokenPipeError, OSError):
        return  # peer vanished; nothing to clean up but the socket
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def _accept_loop(listener: socket.socket, service: Any,
                 executor: Executor, codec: str, info: Dict[str, Any],
                 stop: threading.Event) -> None:
    try:
        listener.settimeout(_ACCEPT_POLL_SECONDS)
    except OSError:
        return  # closed before the loop even started: shutdown race
    while not stop.is_set():
        try:
            conn, _ = listener.accept()
        except socket.timeout:
            continue
        except OSError:
            return  # listener closed under us: shutdown
        worker = threading.Thread(
            target=_serve_connection,
            args=(service, conn, executor, codec, info),
            daemon=True)
        worker.start()
    listener.close()


# ----------------------------------------------------------------------
# Shard server child process
# ----------------------------------------------------------------------
def _shard_process_main(blob: bytes, conn: Any, codec: str,
                        cache_size: Optional[int]) -> None:
    """Decode one shard, warm it, serve it forever on a loopback port."""
    from repro.api import DEFAULT_CACHE_SIZE, CompressedGraph

    handle = CompressedGraph.from_bytes(
        blob, cache_size=(DEFAULT_CACHE_SIZE if cache_size is None
                          else cache_size))
    handle.warm()
    listener, endpoint = bind_socket("127.0.0.1:0")
    conn.send(endpoint)
    conn.close()
    info = {
        "type": "shard",
        "nodes": handle.node_count(),
        "edges": handle.edge_count(),
    }
    stop = threading.Event()  # never set: the parent terminates us
    _accept_loop(listener, handle, InlineExecutor(), codec, info, stop)


# ----------------------------------------------------------------------
# Socket proxies
# ----------------------------------------------------------------------
class _WireConnection:
    """One lock-guarded request/response socket conversation."""

    def __init__(self, address: Union[str, tuple], codec: str,
                 timeout: Optional[float]) -> None:
        self._address = address
        self._codec = codec
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        #: Completed request/response exchanges on this connection —
        #: the router's unit of wire cost (tests assert budgets on it).
        self.round_trips = 0

    def _socket(self) -> socket.socket:
        if self._sock is None:
            self._sock = connect_socket(self._address, self._timeout)
        return self._sock

    def round_trip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.round_trips += 1
            sock = self._socket()
            send_message(sock, message, self._codec)
            try:
                reply = recv_message(sock)
            except FrameError:
                # Desynchronized stream: drop the connection so the
                # next call starts clean, then surface the failure.
                sock.close()
                self._sock = None
                raise
        if reply is None:
            raise WireError(f"server at {self._address!r} closed the "
                            f"connection")
        if reply.get("op") == "error":
            raise WireError(reply.get("message", "server error"))
        return reply

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None


class GraphClient:
    """Client for a served graph: typed, legacy and one-shot surfaces."""

    def __init__(self, address: Union[str, tuple], codec: str = "json",
                 timeout: Optional[float] = None) -> None:
        self._conn = _WireConnection(address, codec, timeout)
        self.address = address

    # -- typed ---------------------------------------------------------
    def execute(self, requests: Sequence[Union[QueryRequest,
                                               Sequence[Any]]]
                ) -> List[QueryResult]:
        """Ship a batch; one :class:`QueryResult` per request, in order.

        Per-request error semantics hold across the wire: a malformed
        or failing request errors alone, everything else is answered.
        """
        wire = requests_to_wire(requests)
        if not wire:
            return []
        reply = self._conn.round_trip({"op": "batch",
                                       "requests": wire})
        if reply.get("op") != "results":
            raise WireError(f"expected results, got "
                            f"{reply.get('op')!r}")
        by_id = {result.id: result
                 for result in results_from_wire(
                     reply.get("results", []))}
        results: List[QueryResult] = []
        for position, entry in enumerate(wire):
            result = by_id.get(entry["id"])
            if result is None:
                result = QueryResult(id=entry["id"],
                                     error="server returned no answer "
                                           "for this request")
            results.append(result)
        return results

    # -- legacy-shaped -------------------------------------------------
    def batch(self, requests: Sequence[Sequence[Any]]) -> List[Any]:
        """Values in request order; raises the first error (legacy)."""
        return [result.unwrap() for result in self.execute(requests)]

    def query(self, kind: str, *args: Any) -> Any:
        """One query, unwrapped."""
        return self.execute([(kind, *args)])[0].unwrap()

    # -- control -------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """The server's self-description (type, shards, sizes)."""
        reply = self._conn.round_trip({"op": "info"})
        return {key: value for key, value in reply.items()
                if key != "op"}

    def ping(self) -> bool:
        """Liveness probe."""
        return self._conn.round_trip({"op": "ping"}).get("op") == "pong"

    @property
    def round_trips(self) -> int:
        """Request/response exchanges this client has performed."""
        return self._conn.round_trips

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "GraphClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RemoteShard:
    """A shard handle living in another process, spoken to by socket.

    Duck-types the slice of :class:`repro.api.CompressedGraph` the
    sharded routing layer touches — ``batch``/``execute``, the
    neighborhood family, ``reachable``, ``degree``,
    ``connected_components``, the counts — by shipping each call to
    its shard server.  The answers come from the same grammar code
    the local handle would run, which is why router-served answers
    are bit-identical to in-process ones.
    """

    def __init__(self, address: Union[str, tuple], codec: str = "json",
                 timeout: Optional[float] = None) -> None:
        self._client = GraphClient(address, codec=codec,
                                   timeout=timeout)
        self.address = address

    # -- the wire format ----------------------------------------------
    def execute(self, requests: Sequence[Union[QueryRequest,
                                               Sequence[Any]]],
                executor: Optional[Executor] = None
                ) -> List[QueryResult]:
        return self._client.execute(requests)

    def batch(self, requests: Sequence[Sequence[Any]],
              parallel: bool = False,
              max_workers: Optional[int] = None) -> List[Any]:
        return self._client.batch(requests)

    def _single(self, kind: str, *args: Any) -> Any:
        return self._client.query(kind, *args)

    # -- the method surface the sharded router calls -------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        return self._single("out", node_id)

    def in_neighbors(self, node_id: int) -> List[int]:
        return self._single("in", node_id)

    def neighbors(self, node_id: int) -> List[int]:
        return self._single("neighborhood", node_id)

    def reachable(self, source_id: int, target_id: int) -> bool:
        return self._single("reach", source_id, target_id)

    def degree(self, node_id: Optional[int] = None,
               direction: str = "out") -> Any:
        if node_id is None:
            return self._single("degree")
        return self._single("degree", node_id, direction)

    def connected_components(self) -> int:
        return self._single("components")

    def path(self, source_id: int, target_id: int
             ) -> Optional[List[int]]:
        return self._single("path", source_id, target_id)

    def node_count(self) -> int:
        return self._single("nodes")

    def edge_count(self) -> int:
        return self._single("edges")

    # -- inert introspection (the router owns no shard state) ----------
    @property
    def round_trips(self) -> int:
        """Wire exchanges with this shard (a cost meter for tests)."""
        return self._client.round_trips

    @property
    def canonicalizations(self) -> int:
        return 0

    @property
    def index_built(self) -> bool:
        return True

    def close(self) -> None:
        self._client.close()


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class GraphServer:
    """Serve a compressed container: shard processes + a router.

    ``start()`` is idempotent-safe to pair with ``close()`` (also a
    context manager).  The ``endpoint`` attribute is the canonical
    client address — with ``port=0`` the OS picks one, so tests and
    benchmarks never race over a fixed port.
    """

    def __init__(self, path: Union[str, Path, bytes],
                 address: str = "127.0.0.1:0",
                 codec: str = "json",
                 cache_size: Optional[int] = None) -> None:
        self._data = (bytes(path) if isinstance(path, (bytes, bytearray))
                      else Path(path).read_bytes())
        self._address = address
        self._codec = codec
        self._cache_size = cache_size
        self._processes: List[Any] = []
        self._proxies: List[RemoteShard] = []
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._service: Optional[Any] = None
        self.endpoint: Optional[str] = None
        self.num_shards = 0

    @property
    def service(self) -> Optional[Any]:
        """The router-side service answering client batches.

        For a sharded container this is the proxy-backed
        :class:`~repro.sharding.ShardedCompressedGraph` (its planner
        and closure are live objects — tests and operators can
        inspect or pin the cross-shard strategy); for a single
        grammar it is the lone :class:`RemoteShard`.  ``None`` until
        :meth:`start`.
        """
        return self._service

    # ------------------------------------------------------------------
    def start(self) -> "GraphServer":
        """Fork the shard servers, build the router, begin accepting.

        Idempotent: a started server (``serve()`` returns one) is not
        started again by ``with server:``.
        """
        if self._listener is not None:
            return self
        from repro.api import DEFAULT_CACHE_SIZE
        from repro.encoding.container import (
            decode_sharded_container,
            is_sharded_container,
        )

        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX
            raise ReproError("socket serving requires a platform with "
                             "fork (POSIX)")
        cache_size = (DEFAULT_CACHE_SIZE if self._cache_size is None
                      else self._cache_size)
        if is_sharded_container(self._data):
            from repro.partition import BoundaryClosure
            from repro.sharding import ShardedCompressedGraph, _decode_meta
            meta, blobs, closure_blob = decode_sharded_container(
                self._data)
            (shard_nodes, boundary_edges, blocks, extrema,
             degree_error, simple, partitioner) = _decode_meta(
                meta, len(blobs))
            # A persisted closure means a cold-started router answers
            # cross-shard reach without ever re-probing the shards.
            closure = (BoundaryClosure.from_bytes(closure_blob)
                       if closure_blob is not None else None)
            shard_endpoints = self._spawn_shards(context, blobs)
            self._proxies = [RemoteShard(endpoint, codec=self._codec)
                             for endpoint in shard_endpoints]
            try:
                service: Any = ShardedCompressedGraph(
                    list(self._proxies), None, boundary_edges, blocks,
                    extrema, degree_error, shard_nodes, simple=simple,
                    partitioner=partitioner, cache_size=cache_size,
                    closure=closure,
                    closure_persisted=closure is not None)
            except Exception:
                # e.g. a closure/meta mismatch: don't leak the shard
                # processes forked above.
                self.close()
                raise
            executor: Executor = ThreadExecutor()
            self.num_shards = len(blobs)
            info = {
                "type": "sharded",
                "shards": len(blobs),
                "nodes": sum(shard_nodes),
                "boundary_edges": len(boundary_edges),
                "partitioner": partitioner,
                "closure": closure is not None,
            }
        else:
            shard_endpoints = self._spawn_shards(context, [self._data])
            proxy = RemoteShard(shard_endpoints[0], codec=self._codec)
            self._proxies = [proxy]
            service = proxy
            executor = InlineExecutor()
            self.num_shards = 1
            info = {"type": "single", "shards": 1,
                    **{key: value
                       for key, value in proxy._client.info().items()
                       if key in ("nodes", "edges")}}
        self._service = service
        self._listener, self.endpoint = bind_socket(self._address)
        self._thread = threading.Thread(
            target=_accept_loop,
            args=(self._listener, service, executor, self._codec, info,
                  self._stop),
            daemon=True)
        self._thread.start()
        return self

    def _spawn_shards(self, context: Any, blobs: Iterable[bytes]
                      ) -> List[str]:
        endpoints: List[str] = []
        for blob in blobs:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_shard_process_main,
                args=(blob, child_conn, self._codec, self._cache_size),
                daemon=True)
            process.start()
            child_conn.close()
            self._processes.append(process)
            if not parent_conn.poll(_STARTUP_TIMEOUT_SECONDS):
                self.close()
                raise ReproError("shard server failed to start within "
                                 f"{_STARTUP_TIMEOUT_SECONDS:.0f}s")
            endpoints.append(parent_conn.recv())
            parent_conn.close()
        return endpoints

    # ------------------------------------------------------------------
    def connect(self, timeout: Optional[float] = None) -> GraphClient:
        """A client for this server's public endpoint."""
        if self.endpoint is None:
            raise ReproError("server is not started")
        return GraphClient(self.endpoint, codec=self._codec,
                           timeout=timeout)

    def close(self) -> None:
        """Stop accepting, drop shard links, terminate shard processes."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        for proxy in self._proxies:
            proxy.close()
        self._proxies = []
        self._service = None
        for process in self._processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        self._processes = []
        # Unix-domain endpoints leave a filesystem entry behind.
        if self.endpoint and self.endpoint.startswith("unix:"):
            try:
                os.unlink(self.endpoint[len("unix:"):])
            except OSError:
                pass

    def __enter__(self) -> "GraphServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Module-level conveniences (the documented entry points)
# ----------------------------------------------------------------------
def serve(path: Union[str, Path, bytes], address: str = "127.0.0.1:0",
          codec: str = "json",
          cache_size: Optional[int] = None) -> GraphServer:
    """Start serving a container; returns the running server.

    ``serve(...)`` / ``with serve(...) as server`` — the server
    accepts in a background thread, shard processes run until
    :meth:`GraphServer.close`.
    """
    return GraphServer(path, address=address, codec=codec,
                       cache_size=cache_size).start()


def connect(address: Union[str, tuple], codec: str = "json",
            timeout: Optional[float] = None) -> GraphClient:
    """Connect to a :func:`serve` endpoint."""
    return GraphClient(address, codec=codec, timeout=timeout)
