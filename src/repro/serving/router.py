"""Socket serving: shard server processes, the router, the client.

The deployment shape the paper's query family implies — grammars are
small, queries are ``O(|G|)``, so a compressed graph can sit resident
in memory and *answer traffic* — becomes concrete here:

:class:`GraphServer` (``serve()``)
    Serves a ``.grpr``/``.grps`` container on a socket endpoint.  For
    a sharded container it forks **one process per shard** (each
    decodes only its own shard's bytes, warms its index and serves
    its local §V family on a loopback socket) plus a **router** in
    the calling process: a proxy-backed
    :class:`~repro.sharding.ShardedCompressedGraph` whose "shard
    handles" are :class:`RemoteShard` socket clients.  Incoming
    batches are planned once (dedup + router-side LRU pre-filter) and
    the per-shard groups are multiplexed over the shard links in
    parallel; cross-shard queries run the exact routed/merged
    algorithms the in-process handle uses, so answers are
    bit-identical to local evaluation.
:class:`GraphClient` (``connect()``)
    The wire-codec client: typed ``execute()``, legacy-shaped
    ``batch()``, single-shot ``query()``, ``info()``/``ping()`` — and,
    with ``pipeline=True``, a **multiplexing** client: every frame is
    sequence-tagged, many batches ride one connection concurrently
    (``execute_async`` returns a future), and ``pool_size=`` spreads
    the traffic over several such connections.
:class:`RemoteShard`
    A shard-shaped proxy speaking the same wire protocol; the sharded
    handle cannot tell it from a local :class:`CompressedGraph`.  The
    router runs its shard links pipelined, so concurrent client
    batches multiplex over one socket per shard instead of queueing
    on a per-connection lock.

Every server — the router and each shard process — runs the
:class:`repro.serving.aio.ServerLoop` event loop: many in-flight
tagged frames per connection, legacy untagged frames still answered
strictly in order.

Endpoints are ``"host:port"`` (TCP, loopback by default) or
``"unix:/path"``.  Both frames and payloads come from
:mod:`repro.serving.codec`; one process per shard means shard builds,
crashes and restarts are isolated, and the router process never holds
a single decoded grammar.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import ReproError
from repro.serving.aio import ServerLoop
from repro.serving.codec import (
    FrameError,
    WireError,
    bind_socket,
    connect_socket,
    recv_frame,
    recv_message,
    requests_to_wire,
    results_from_wire,
    send_frame,
    send_message,
)
from repro.serving.executors import (
    Executor,
    InlineExecutor,
    ThreadExecutor,
    _fork_context,
)
from repro.serving.protocol import QueryRequest, QueryResult

__all__ = [
    "GraphClient",
    "GraphServer",
    "RemoteShard",
    "connect",
    "serve",
]

_STARTUP_TIMEOUT_SECONDS = 60.0


# ----------------------------------------------------------------------
# Shard server child process
# ----------------------------------------------------------------------
def _shard_process_main(blob: bytes, conn: Any, codec: str,
                        cache_size: Optional[int],
                        pipeline: Optional[int]) -> None:
    """Decode one shard, warm it, serve it forever on a loopback port."""
    from repro.api import DEFAULT_CACHE_SIZE, CompressedGraph

    handle = CompressedGraph.from_bytes(
        blob, cache_size=(DEFAULT_CACHE_SIZE if cache_size is None
                          else cache_size))
    handle.warm()
    listener, endpoint = bind_socket("127.0.0.1:0")
    conn.send(endpoint)
    conn.close()
    info = {
        "type": "shard",
        "nodes": handle.node_count(),
        "edges": handle.edge_count(),
        # Terminal label names, so a proxy-backed router can step
        # pattern DFAs over boundary-edge labels without the alphabet.
        "labels": [[label, handle.alphabet.name(label)]
                   for label in handle.alphabet.terminals()],
    }
    # Blocks until the parent terminates us; an unexpected listener
    # death surfaces as a nonzero exit instead of a silent idle child.
    loop = ServerLoop(listener, handle, InlineExecutor(), codec, info,
                      pipeline=pipeline)
    loop.run()
    if loop.fault is not None:
        raise loop.fault


# ----------------------------------------------------------------------
# Reply settlement (shared by the strict and pipelined clients)
# ----------------------------------------------------------------------
def _settle_results(wire: List[Dict[str, Any]],
                    reply: Dict[str, Any]) -> List[QueryResult]:
    """A ``results`` reply -> one result per shipped request, in order."""
    if reply.get("op") != "results":
        raise WireError(f"expected results, got {reply.get('op')!r}")
    by_id = {result.id: result
             for result in results_from_wire(reply.get("results", []))}
    results: List[QueryResult] = []
    for entry in wire:
        result = by_id.get(entry["id"])
        if result is None:
            result = QueryResult(id=entry["id"],
                                 error="server returned no answer "
                                       "for this request")
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Socket conversations: strict and multiplexed
# ----------------------------------------------------------------------
class _WireConnection:
    """One lock-guarded request/response socket conversation."""

    def __init__(self, address: Union[str, tuple], codec: str,
                 timeout: Optional[float]) -> None:
        self._address = address
        self._codec = codec
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        #: Completed request/response exchanges on this connection —
        #: the router's unit of wire cost (tests assert budgets on it).
        self.round_trips = 0

    def _socket(self) -> socket.socket:
        if self._sock is None:
            self._sock = connect_socket(self._address, self._timeout)
        return self._sock

    def round_trip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.round_trips += 1
            sock = self._socket()
            send_message(sock, message, self._codec)
            try:
                reply = recv_message(sock)
            except FrameError:
                # Desynchronized stream: drop the connection so the
                # next call starts clean, then surface the failure.
                sock.close()
                self._sock = None
                raise
        if reply is None:
            raise WireError(f"server at {self._address!r} closed the "
                            f"connection")
        if reply.get("op") == "error":
            raise WireError(reply.get("message", "server error"))
        return reply

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None


class _MuxConnection:
    """One pipelined socket conversation: many frames in flight.

    Every outgoing message is sequence-tagged; a daemon reader thread
    correlates replies back to their futures by sequence id, in
    whatever order the server finishes them.  One lock serializes
    sends and the pending table — receives never hold it, so a slow
    reply blocks nothing.

    Failure discipline (the client-visible contracts the tests pin):

    * a server that dies mid-conversation **fails every pending
      future** instead of leaving callers hung;
    * a reply whose sequence id was never issued is a protocol
      violation — the connection is poisoned and every call after it
      raises;
    * only :meth:`close` is a deliberate shutdown; any other socket
      death surfaces as :class:`~repro.exceptions.ReproError`
      carrying the errno, never a silent return.
    """

    def __init__(self, address: Union[str, tuple], codec: str,
                 timeout: Optional[float]) -> None:
        self._address = address
        self._codec = codec
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._seq = itertools.count()
        self._pending: Dict[int, "Future[Dict[str, Any]]"] = {}
        self._closed = False
        self._fault: Optional[ReproError] = None
        #: Completed request/reply exchanges (same unit as the strict
        #: connection's counter: one frame out, one frame back).
        self.round_trips = 0

    # -- sending -------------------------------------------------------
    def submit(self, message: Dict[str, Any]
               ) -> "Future[Dict[str, Any]]":
        """Ship one sequence-tagged frame; the reply as a future."""
        future: "Future[Dict[str, Any]]" = Future()
        future.set_running_or_notify_cancel()
        with self._lock:
            if self._fault is not None:
                raise self._fault
            if self._closed:
                raise WireError("connection is closed")
            sock = self._ensure_socket()
            seq = next(self._seq)
            self._pending[seq] = future
            try:
                send_frame(sock, message, self._codec, seq=seq)
            except OSError as exc:
                self._pending.pop(seq, None)
                self._fault = ReproError(
                    f"send to {self._address!r} failed unexpectedly "
                    f"(errno {exc.errno}): {exc}")
                raise self._fault from exc
        return future

    def _ensure_socket(self) -> socket.socket:
        if self._sock is None:
            sock = connect_socket(self._address, self._timeout)
            # The reader owns receives and must block indefinitely
            # between replies; client-level timeouts are enforced on
            # the futures, not the socket.
            sock.settimeout(None)
            self._sock = sock
            threading.Thread(target=self._reader_main, args=(sock,),
                             daemon=True,
                             name="repro-client-reader").start()
        return self._sock

    # -- receiving (the reader thread) ---------------------------------
    def _reader_main(self, sock: socket.socket) -> None:
        fault: Optional[ReproError] = None
        try:
            while True:
                try:
                    received = recv_frame(sock)
                except (FrameError, WireError) as exc:
                    if not self._closed:
                        fault = exc
                    return
                except OSError as exc:
                    if not self._closed:
                        fault = ReproError(
                            f"connection to {self._address!r} failed "
                            f"unexpectedly (errno {exc.errno}): {exc}")
                    return
                if received is None:  # clean close on a boundary
                    with self._lock:
                        if self._pending and not self._closed:
                            fault = WireError(
                                f"server at {self._address!r} closed "
                                f"the connection with "
                                f"{len(self._pending)} requests in "
                                f"flight")
                    return
                seq, message = received
                if seq is None:
                    # Untagged frames on a pipelined connection are
                    # connection-level: a fatal server error (e.g. an
                    # oversized frame verdict) or a protocol breach.
                    if message.get("op") == "error":
                        fault = WireError(
                            message.get("message", "server error"))
                    else:
                        fault = WireError(
                            "untagged reply on a pipelined connection")
                    return
                with self._lock:
                    future = self._pending.pop(seq, None)
                if future is None:
                    fault = WireError(
                        f"server replied to sequence id {seq}, which "
                        f"was never issued on this connection")
                    return
                self.round_trips += 1
                if message.get("op") == "error":
                    future.set_exception(WireError(
                        message.get("message", "server error")))
                else:
                    future.set_result(message)
        finally:
            self._retire(sock, fault)

    def _retire(self, sock: socket.socket,
                fault: Optional[ReproError]) -> None:
        """Tear one socket down: record the fault, fail the pending."""
        with self._lock:
            if fault is not None and not self._closed:
                self._fault = fault
            if self._sock is sock:
                self._sock = None
            pending = list(self._pending.values())
            self._pending.clear()
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
        failure = fault if fault is not None else WireError(
            "connection closed with requests in flight")
        for future in pending:
            if not future.done():
                future.set_exception(failure)

    # -- lifecycle -----------------------------------------------------
    @property
    def fault(self) -> Optional[ReproError]:
        """The unexpected failure that poisoned this connection."""
        return self._fault

    def close(self) -> None:
        with self._lock:
            self._closed = True
            sock = self._sock
            self._sock = None
        if sock is not None:
            try:
                sock.close()  # wakes the reader, which retires cleanly
            except OSError:  # pragma: no cover
                pass


class GraphClient:
    """Client for a served graph: typed, legacy and one-shot surfaces.

    The default client is strict request–response on one connection —
    simple, and exactly what scripts and the CLI need.  With
    ``pipeline=True`` it becomes a multiplexing client: every frame
    is sequence-tagged, :meth:`execute_async` returns a future, many
    batches ride each connection concurrently, and ``pool_size``
    connections share the traffic round-robin (one is plenty until a
    single reader thread saturates).
    """

    def __init__(self, address: Union[str, tuple], codec: str = "json",
                 timeout: Optional[float] = None,
                 pipeline: bool = False, pool_size: int = 1) -> None:
        self.address = address
        self.pipeline = bool(pipeline)
        self._timeout = timeout
        self._conn: Optional[_WireConnection] = None
        self._pool: List[_MuxConnection] = []
        if self.pipeline:
            self._pool = [_MuxConnection(address, codec, timeout)
                          for _ in range(max(1, int(pool_size)))]
            self._rr = itertools.count()
        else:
            if pool_size not in (None, 1):
                raise ReproError("pool_size > 1 needs pipeline=True "
                                 "(a strict client holds exactly one "
                                 "connection)")
            self._conn = _WireConnection(address, codec, timeout)

    # -- plumbing ------------------------------------------------------
    def _next_mux(self) -> _MuxConnection:
        return self._pool[next(self._rr) % len(self._pool)]

    def _await(self, future: "Future[Any]") -> Any:
        try:
            return future.result(self._timeout)
        except FutureTimeoutError:
            raise WireError(f"no reply from {self.address!r} within "
                            f"{self._timeout}s") from None

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self.pipeline:
            return self._await(self._next_mux().submit(message))
        return self._conn.round_trip(message)

    # -- typed ---------------------------------------------------------
    def execute(self, requests: Sequence[Union[QueryRequest,
                                               Sequence[Any]]]
                ) -> List[QueryResult]:
        """Ship a batch; one :class:`QueryResult` per request, in order.

        Per-request error semantics hold across the wire: a malformed
        or failing request errors alone, everything else is answered.
        """
        if self.pipeline:
            return self._await(self.execute_async(requests))
        wire = requests_to_wire(requests)
        if not wire:
            return []
        return _settle_results(
            wire, self._conn.round_trip({"op": "batch",
                                         "requests": wire}))

    def execute_async(self, requests: Sequence[Union[QueryRequest,
                                                     Sequence[Any]]]
                      ) -> "Future[List[QueryResult]]":
        """Ship a batch without waiting; results as a future.

        Requires ``pipeline=True``.  Many futures can be outstanding
        per connection; the server answers them as each batch
        completes, in any order, and the sequence tags route every
        reply to its future.
        """
        if not self.pipeline:
            raise ReproError("execute_async needs a pipelined client "
                             "(GraphClient(..., pipeline=True))")
        done: "Future[List[QueryResult]]" = Future()
        done.set_running_or_notify_cancel()
        wire = requests_to_wire(requests)
        if not wire:
            done.set_result([])
            return done
        inner = self._next_mux().submit({"op": "batch",
                                         "requests": wire})

        def settle(reply: "Future[Dict[str, Any]]") -> None:
            try:
                done.set_result(_settle_results(wire, reply.result()))
            except BaseException as exc:
                done.set_exception(exc)

        inner.add_done_callback(settle)
        return done

    # -- legacy-shaped -------------------------------------------------
    def batch(self, requests: Sequence[Sequence[Any]]) -> List[Any]:
        """Values in request order; raises the first error (legacy)."""
        return [result.unwrap() for result in self.execute(requests)]

    def query(self, kind: str, *args: Any) -> Any:
        """One query, unwrapped."""
        return self.execute([(kind, *args)])[0].unwrap()

    # -- control -------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """The server's self-description (type, shards, sizes)."""
        reply = self._roundtrip({"op": "info"})
        return {key: value for key, value in reply.items()
                if key != "op"}

    def ping(self) -> bool:
        """Liveness probe."""
        return self._roundtrip({"op": "ping"}).get("op") == "pong"

    @property
    def round_trips(self) -> int:
        """Request/response exchanges this client has performed."""
        if self.pipeline:
            return sum(conn.round_trips for conn in self._pool)
        return self._conn.round_trips

    def close(self) -> None:
        for conn in self._pool:
            conn.close()
        if self._conn is not None:
            self._conn.close()

    def __enter__(self) -> "GraphClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RemoteShard:
    """A shard handle living in another process, spoken to by socket.

    Duck-types the slice of :class:`repro.api.CompressedGraph` the
    sharded routing layer touches — ``batch``/``execute``, the
    neighborhood family, ``reachable``, ``degree``,
    ``connected_components``, the counts — by shipping each call to
    its shard server.  The answers come from the same grammar code
    the local handle would run, which is why router-served answers
    are bit-identical to in-process ones.

    The link is **pipelined by default**: concurrent router batches
    (the event loop's worker pool fanning out per-shard groups)
    multiplex over one sequence-tagged connection instead of
    queueing on a per-connection lock.
    """

    def __init__(self, address: Union[str, tuple], codec: str = "json",
                 timeout: Optional[float] = None,
                 pipeline: bool = True) -> None:
        self._client = GraphClient(address, codec=codec,
                                   timeout=timeout, pipeline=pipeline)
        self.address = address

    # -- the wire format ----------------------------------------------
    def execute(self, requests: Sequence[Union[QueryRequest,
                                               Sequence[Any]]],
                executor: Optional[Executor] = None
                ) -> List[QueryResult]:
        return self._client.execute(requests)

    def batch(self, requests: Sequence[Sequence[Any]],
              parallel: bool = False,
              max_workers: Optional[int] = None) -> List[Any]:
        return self._client.batch(requests)

    def _single(self, kind: str, *args: Any) -> Any:
        return self._client.query(kind, *args)

    # -- the method surface the sharded router calls -------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        return self._single("out", node_id)

    def in_neighbors(self, node_id: int) -> List[int]:
        return self._single("in", node_id)

    def neighbors(self, node_id: int) -> List[int]:
        return self._single("neighborhood", node_id)

    def reachable(self, source_id: int, target_id: int) -> bool:
        return self._single("reach", source_id, target_id)

    def degree(self, node_id: Optional[int] = None,
               direction: str = "out") -> Any:
        if node_id is None:
            return self._single("degree")
        return self._single("degree", node_id, direction)

    def connected_components(self) -> int:
        return self._single("components")

    def path(self, source_id: int, target_id: int
             ) -> Optional[List[int]]:
        return self._single("path", source_id, target_id)

    def node_count(self) -> int:
        return self._single("nodes")

    def edge_count(self) -> int:
        return self._single("edges")

    # -- inert introspection (the router owns no shard state) ----------
    @property
    def round_trips(self) -> int:
        """Wire exchanges with this shard (a cost meter for tests)."""
        return self._client.round_trips

    @property
    def canonicalizations(self) -> int:
        return 0

    @property
    def index_built(self) -> bool:
        return True

    def close(self) -> None:
        self._client.close()


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class GraphServer:
    """Serve a compressed container: shard processes + a router.

    ``start()`` is idempotent-safe to pair with ``close()`` (also a
    context manager).  The ``endpoint`` attribute is the canonical
    client address — with ``port=0`` the OS picks one, so tests and
    benchmarks never race over a fixed port.  ``pipeline`` bounds the
    concurrently evaluating batches per server (the event loop's
    worker pool; default :data:`repro.serving.aio.DEFAULT_PIPELINE`).
    """

    def __init__(self, path: Union[str, Path, bytes],
                 address: str = "127.0.0.1:0",
                 codec: str = "json",
                 cache_size: Optional[int] = None,
                 pipeline: Optional[int] = None) -> None:
        self._data = (bytes(path) if isinstance(path, (bytes, bytearray))
                      else Path(path).read_bytes())
        self._address = address
        self._codec = codec
        self._cache_size = cache_size
        self._pipeline = pipeline
        self._processes: List[Any] = []
        self._proxies: List[RemoteShard] = []
        self._listener: Optional[socket.socket] = None
        self._loop: Optional[ServerLoop] = None
        self._service: Optional[Any] = None
        self.endpoint: Optional[str] = None
        self.num_shards = 0

    @property
    def service(self) -> Optional[Any]:
        """The router-side service answering client batches.

        For a sharded container this is the proxy-backed
        :class:`~repro.sharding.ShardedCompressedGraph` (its planner
        and closure are live objects — tests and operators can
        inspect or pin the cross-shard strategy); for a single
        grammar it is the lone :class:`RemoteShard`.  ``None`` until
        :meth:`start`.
        """
        return self._service

    @property
    def fault(self) -> Optional[ReproError]:
        """An unexpected serving-loop death (listener failure), or
        ``None`` while healthy or after a deliberate :meth:`close`."""
        return self._loop.fault if self._loop is not None else None

    # ------------------------------------------------------------------
    def start(self) -> "GraphServer":
        """Fork the shard servers, build the router, begin accepting.

        Idempotent: a started server (``serve()`` returns one) is not
        started again by ``with server:``.
        """
        if self._listener is not None:
            return self
        from repro.api import DEFAULT_CACHE_SIZE
        from repro.encoding.container import (
            decode_sharded_container,
            is_sharded_container,
        )

        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX
            raise ReproError("socket serving requires a platform with "
                             "fork (POSIX)")
        cache_size = (DEFAULT_CACHE_SIZE if self._cache_size is None
                      else self._cache_size)
        if is_sharded_container(self._data):
            from repro.partition import BoundaryClosure
            from repro.sharding import (
                ShardedCompressedGraph,
                _decode_meta,
                _decode_rpq_closures,
            )
            meta, blobs, closure_blob, rpq_blob = \
                decode_sharded_container(self._data)
            (shard_nodes, boundary_edges, blocks, extrema,
             degree_error, simple, partitioner) = _decode_meta(
                meta, len(blobs))
            # A persisted closure means a cold-started router answers
            # cross-shard reach without ever re-probing the shards.
            closure = (BoundaryClosure.from_bytes(closure_blob)
                       if closure_blob is not None else None)
            rpq_closures = (_decode_rpq_closures(rpq_blob)
                            if rpq_blob is not None else None)
            shard_endpoints = self._spawn_shards(context, blobs)
            self._proxies = [RemoteShard(endpoint, codec=self._codec)
                             for endpoint in shard_endpoints]
            # The router owns no grammar, so boundary-edge label names
            # (RPQ DFA steps, pattern-count corrections) come from the
            # shard servers' startup info.
            label_names: Dict[int, Optional[str]] = {}
            for proxy in self._proxies:
                for label, name in \
                        proxy._client.info().get("labels", []):
                    label_names.setdefault(label, name)
            try:
                service: Any = ShardedCompressedGraph(
                    list(self._proxies), None, boundary_edges, blocks,
                    extrema, degree_error, shard_nodes, simple=simple,
                    partitioner=partitioner, cache_size=cache_size,
                    closure=closure,
                    closure_persisted=closure is not None,
                    label_names=sorted(label_names.items()),
                    rpq_closures=rpq_closures,
                    rpq_closures_persisted=rpq_closures is not None)
            except Exception:
                # e.g. a closure/meta mismatch: don't leak the shard
                # processes forked above.
                self.close()
                raise
            executor: Executor = ThreadExecutor()
            self.num_shards = len(blobs)
            info = {
                "type": "sharded",
                "shards": len(blobs),
                "nodes": sum(shard_nodes),
                "boundary_edges": len(boundary_edges),
                "partitioner": partitioner,
                "closure": closure is not None,
            }
        else:
            shard_endpoints = self._spawn_shards(context, [self._data])
            proxy = RemoteShard(shard_endpoints[0], codec=self._codec)
            self._proxies = [proxy]
            service = proxy
            executor = InlineExecutor()
            self.num_shards = 1
            info = {"type": "single", "shards": 1,
                    **{key: value
                       for key, value in proxy._client.info().items()
                       if key in ("nodes", "edges")}}
        self._service = service
        self._listener, self.endpoint = bind_socket(self._address)
        self._loop = ServerLoop(self._listener, service, executor,
                                self._codec, info,
                                pipeline=self._pipeline).start()
        return self

    def _spawn_shards(self, context: Any, blobs: Iterable[bytes]
                      ) -> List[str]:
        endpoints: List[str] = []
        for blob in blobs:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_shard_process_main,
                args=(blob, child_conn, self._codec, self._cache_size,
                      self._pipeline),
                daemon=True)
            process.start()
            child_conn.close()
            self._processes.append(process)
            if not parent_conn.poll(_STARTUP_TIMEOUT_SECONDS):
                self.close()
                raise ReproError("shard server failed to start within "
                                 f"{_STARTUP_TIMEOUT_SECONDS:.0f}s")
            endpoints.append(parent_conn.recv())
            parent_conn.close()
        return endpoints

    # ------------------------------------------------------------------
    def connect(self, timeout: Optional[float] = None,
                pipeline: bool = False,
                pool_size: int = 1) -> GraphClient:
        """A client for this server's public endpoint."""
        if self.endpoint is None:
            raise ReproError("server is not started")
        return GraphClient(self.endpoint, codec=self._codec,
                           timeout=timeout, pipeline=pipeline,
                           pool_size=pool_size)

    def close(self) -> None:
        """Stop accepting, drop shard links, terminate shard processes.

        This is the *deliberate* shutdown path: the serving loop is
        flagged before its listener closes, so an orderly teardown is
        never misreported as a listener failure.
        """
        if self._loop is not None:
            self._loop.stop()
            self._loop = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        for proxy in self._proxies:
            proxy.close()
        self._proxies = []
        self._service = None
        for process in self._processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        self._processes = []
        # Unix-domain endpoints leave a filesystem entry behind.
        if self.endpoint and self.endpoint.startswith("unix:"):
            try:
                os.unlink(self.endpoint[len("unix:"):])
            except OSError:
                pass

    def __enter__(self) -> "GraphServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Module-level conveniences (the documented entry points)
# ----------------------------------------------------------------------
def serve(path: Union[str, Path, bytes], address: str = "127.0.0.1:0",
          codec: str = "json",
          cache_size: Optional[int] = None,
          pipeline: Optional[int] = None) -> GraphServer:
    """Start serving a container; returns the running server.

    ``serve(...)`` / ``with serve(...) as server`` — the server
    accepts in a background thread, shard processes run until
    :meth:`GraphServer.close`.  ``pipeline`` bounds the concurrently
    evaluating batches per server process.
    """
    return GraphServer(path, address=address, codec=codec,
                       cache_size=cache_size, pipeline=pipeline).start()


def connect(address: Union[str, tuple], codec: str = "json",
            timeout: Optional[float] = None,
            pipeline: bool = False,
            pool_size: int = 1) -> GraphClient:
    """Connect to a :func:`serve` endpoint.

    ``pipeline=True`` returns the multiplexing client (sequence-tagged
    frames, ``execute_async``, ``pool_size`` pooled connections)."""
    return GraphClient(address, codec=codec, timeout=timeout,
                       pipeline=pipeline, pool_size=pool_size)
