"""Container file format tying alphabet, start graph and rules together.

Layout (all byte-aligned sections, lengths as LEB128 varints)::

    magic   "GRPR"                     4 bytes
    version 0x01                       1 byte
    k       varint                     k2-tree arity (2 by default)
    [alphabet section]   varint length + payload
    [start section]      varint bit length + payload (padded to bytes)
    [rules section]      varint bit length + payload (padded to bytes)

The alphabet section stores every label's rank, a terminal flag and an
optional UTF-8 name, so a decoded grammar is fully self-describing
(RDF predicates keep their names).

:class:`GrammarFile` is the user-facing handle: it knows its section
sizes (the paper reports that the start-graph k2-trees dominate the
output; :attr:`GrammarFile.section_bytes` lets benchmarks verify that)
and converts to/from ``bytes`` and files.

Multi-shard framing
-------------------
:class:`repro.sharding.ShardedCompressedGraph` persists one grammar per
shard plus a routing summary.  The framing lives here so every
container kind shares one magic-dispatch and one size-accounting
convention::

    magic   "GRPS"                     4 bytes
    version 0x01                       1 byte
    shards  varint                     number of shard grammars
    [meta section]       varint length + payload (routing summary,
                         encoded by repro.sharding)
    per shard: varint length + a complete "GRPR" container
    [closure section]    optional: tag 'C' + varint length + payload
                         (boundary transitive closure, encoded by
                         repro.partition.boundary)

The closure section is optional and tagged: old files (which end
exactly at the last shard blob) keep decoding, while an *unknown* tag
is rejected as corruption — adding a new trailer section therefore
goes hand in hand with teaching this decoder its tag (readers predating
a section cannot open files that carry it).  A persisted closure lets
a cold-started server answer cross-shard reachability without
re-probing the shards.

:func:`sharded_container_sections` reports ``meta`` (plus ``closure``
when present) next to the existing per-section accounting of every
embedded shard container under ``shard<i>/<section>`` keys, so
benchmarks keep the same size breakdown they have for single grammars.

Zero-copy decode
----------------
Nothing in the framing requires the payloads up front:
:func:`decode_sharded_container` parses only the length headers and
returns a :class:`DecodedContainer` whose sections are *spans* into the
source buffer, materialized (copied into owned ``bytes``) one at a time
on first access.  Files enter as ``mmap``-backed memoryviews
(:func:`map_file`, used by :meth:`GrammarFile.read` /
:meth:`ShardedFile.read`), so a :class:`~repro.serving.router.ShardHost`
opening a many-shard container copies exactly its own shard blob, and a
manifest-mode router copies only the meta and closure trailers — the
kernel never even pages in the shards it does not touch.  The
:attr:`DecodedContainer.materialized_bytes` counter is the observable
the cold-open benchmark gate checks.
"""

from __future__ import annotations

import mmap
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.alphabet import Alphabet
from repro.core.grammar import SLHRGrammar
from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter
from repro.util.varint import read_uvarint, write_uvarint
from repro.encoding.rules import decode_rules, encode_rules
from repro.encoding.startgraph import decode_start_graph, encode_start_graph

_MAGIC = b"GRPR"
_SHARDED_MAGIC = b"GRPS"
_VERSION = 1

#: Anything the decoders accept: parsing indexes single bytes and
#: compares slices, both of which memoryviews support, so file-backed
#: containers never round-trip through an up-front ``read_bytes`` copy.
Buffer = Union[bytes, bytearray, memoryview]


def map_file(path: Union[str, Path]) -> Buffer:
    """Map ``path`` read-only into memory, returning a memoryview.

    The view keeps its ``mmap`` exporter alive, so callers treat the
    result like bytes; pages are faulted in on access rather than read
    eagerly.  Empty files (``mmap`` rejects length 0) and filesystems
    without mmap support fall back to a plain read.
    """
    try:
        with open(path, "rb") as handle:
            return memoryview(mmap.mmap(handle.fileno(), 0,
                                        access=mmap.ACCESS_READ))
    except (ValueError, OSError):
        return Path(path).read_bytes()


@dataclass
class GrammarFile:
    """A serialized grammar plus size accounting.

    ``data`` is any buffer (freshly encoded ``bytes``, or an
    mmap-backed memoryview when loaded with :meth:`read`).
    """

    data: Buffer
    section_bytes: Dict[str, int]

    @property
    def total_bytes(self) -> int:
        """Size of the complete container in bytes."""
        return len(self.data)

    def bits_per_edge(self, num_edges: int) -> float:
        """bpe against a given original edge count (paper's metric)."""
        if num_edges <= 0:
            raise EncodingError("num_edges must be positive for bpe")
        return 8.0 * self.total_bytes / num_edges

    def write(self, path: Union[str, Path]) -> None:
        """Write the container to ``path``."""
        Path(path).write_bytes(self.data)

    @classmethod
    def read(cls, path: Union[str, Path]) -> "GrammarFile":
        """Load a container previously written with :meth:`write`.

        Zero-copy: the data is memory-mapped, not read eagerly.
        """
        data = map_file(path)
        return cls(data=data, section_bytes=container_sections(data))


def container_sections(data: Buffer) -> Dict[str, int]:
    """Per-section byte sizes of a serialized container.

    Parses only the length headers (no payload decoding), so loaded
    containers report the same accounting as freshly encoded ones.
    Returns ``{}`` for data that is not a well-formed container header
    — full validation happens in :func:`decode_grammar`.
    """
    try:
        if len(data) < 6 or data[:4] != _MAGIC or data[4] != _VERSION:
            return {}
        pos = 5
        _, pos = read_uvarint(data, pos)  # k
        alpha_len, pos = read_uvarint(data, pos)
        pos += alpha_len
        start_bits, pos = read_uvarint(data, pos)
        start_bytes = (start_bits + 7) // 8
        pos += start_bytes
        rules_bits, pos = read_uvarint(data, pos)
        rules_bytes = (rules_bits + 7) // 8
        if pos + rules_bytes > len(data):
            return {}
        return {
            "header": 5,
            "alphabet": alpha_len,
            "start": start_bytes,
            "rules": rules_bytes,
        }
    except (EncodingError, IndexError, ValueError):
        return {}


def _encode_alphabet(alphabet: Alphabet, include_names: bool) -> bytes:
    out = bytearray()
    write_uvarint(out, len(alphabet))
    for label in alphabet:
        write_uvarint(out, alphabet.rank(label))
        name = alphabet.name(label) if include_names else None
        flags = (1 if alphabet.is_terminal(label) else 0)
        flags |= (2 if name is not None else 0)
        out.append(flags)
        if name is not None:
            encoded = name.encode("utf-8")
            write_uvarint(out, len(encoded))
            out.extend(encoded)
    return bytes(out)


def _decode_alphabet(data: bytes) -> Alphabet:
    alphabet = Alphabet()
    count, pos = read_uvarint(data, 0)
    if count > 8 * len(data) + 8:
        raise EncodingError("alphabet count exceeds section size")
    for _ in range(count):
        rank, pos = read_uvarint(data, pos)
        if pos >= len(data):
            raise EncodingError("truncated alphabet section")
        flags = data[pos]
        pos += 1
        name = None
        if flags & 2:
            length, pos = read_uvarint(data, pos)
            if pos + length > len(data):
                raise EncodingError("truncated label name")
            try:
                name = bytes(data[pos:pos + length]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise EncodingError(f"corrupt label name: {exc}") \
                    from None
            pos += length
        if flags & 1:
            alphabet.add_terminal(rank, name)
        else:
            alphabet.fresh_nonterminal(rank)
    return alphabet


def _compact_labels(grammar: SLHRGrammar) -> SLHRGrammar:
    """Drop unused nonterminal labels, renumbering the survivors.

    gRePair mints a nonterminal per replaced digram, but pruning
    typically removes most rules again; serializing the dead labels
    would waste alphabet space and inflate every delta-coded label
    reference.  Terminals keep their IDs (all of them, used or not), so
    the derived graph ``val(G)`` is unchanged; only nonterminal IDs are
    compacted.
    """
    from repro.core.alphabet import Alphabet
    from repro.core.hypergraph import Hypergraph

    old = grammar.alphabet
    compact = Alphabet()
    mapping: dict = {}
    for label in old:
        if old.is_terminal(label):
            mapping[label] = compact.add_terminal(old.rank(label),
                                                  old.name(label))
    for label in sorted(grammar.nonterminals()):
        mapping[label] = compact.fresh_nonterminal(old.rank(label))

    def relabel(graph: Hypergraph) -> Hypergraph:
        result = Hypergraph()
        for node in sorted(graph.nodes()):
            result.add_node(node)
        for _, edge in graph.edges():
            result.add_edge(mapping[edge.label], edge.att)
        result.set_external(graph.ext)
        return result

    rebuilt = SLHRGrammar(compact, relabel(grammar.start))
    for lhs in sorted(grammar.nonterminals()):
        rebuilt.add_rule(mapping[lhs], relabel(grammar.rhs(lhs)))
    return rebuilt


def encode_grammar(grammar: SLHRGrammar, k: int = 2,
                   include_names: bool = True) -> GrammarFile:
    """Serialize ``grammar`` (canonicalizing it first) to a container.

    ``include_names=False`` drops label names from the output — this is
    the setting the benchmarks use, matching the paper's convention of
    excluding the RDF dictionary from all size comparisons.
    """
    canonical = _compact_labels(grammar.canonicalize())
    alphabet_bytes = _encode_alphabet(canonical.alphabet, include_names)

    start_writer = BitWriter()
    encode_start_graph(canonical.start, start_writer, k=k)
    start_payload = start_writer.to_bytes()

    rules_writer = BitWriter()
    encode_rules(canonical, rules_writer)
    rules_payload = rules_writer.to_bytes()

    out = bytearray()
    out.extend(_MAGIC)
    out.append(_VERSION)
    write_uvarint(out, k)
    write_uvarint(out, len(alphabet_bytes))
    out.extend(alphabet_bytes)
    write_uvarint(out, len(start_writer))
    out.extend(start_payload)
    write_uvarint(out, len(rules_writer))
    out.extend(rules_payload)
    return GrammarFile(
        data=bytes(out),
        section_bytes={
            "header": 5,
            "alphabet": len(alphabet_bytes),
            "start": len(start_payload),
            "rules": len(rules_payload),
        },
    )


def decode_grammar(source: Union[GrammarFile, Buffer]) -> SLHRGrammar:
    """Rebuild a working grammar from a container.

    The result is canonical: ``val(decoded)`` equals
    ``val(grammar.canonicalize())`` of the encoded grammar node for
    node.
    """
    data = source.data if isinstance(source, GrammarFile) else source
    if len(data) < 6:
        raise EncodingError("container too short")
    if data[:4] != _MAGIC:
        raise EncodingError("not a grammar container (bad magic)")
    if data[4] != _VERSION:
        raise EncodingError(f"unsupported container version {data[4]}")
    pos = 5
    k, pos = read_uvarint(data, pos)

    alpha_len, pos = read_uvarint(data, pos)
    alphabet = _decode_alphabet(data[pos:pos + alpha_len])
    pos += alpha_len

    start_bits, pos = read_uvarint(data, pos)
    start_bytes = (start_bits + 7) // 8
    start_reader = BitReader(data[pos:pos + start_bytes], start_bits)
    start = decode_start_graph(start_reader, alphabet, k=k)
    pos += start_bytes

    rules_bits, pos = read_uvarint(data, pos)
    rules_bytes = (rules_bits + 7) // 8
    rules_reader = BitReader(data[pos:pos + rules_bytes], rules_bits)
    grammar = SLHRGrammar(alphabet, start)
    decode_rules(rules_reader, alphabet, grammar)
    grammar.validate()
    return grammar


# ----------------------------------------------------------------------
# Multi-shard container framing
# ----------------------------------------------------------------------
@dataclass
class ShardedFile:
    """A serialized multi-shard container plus size accounting.

    Mirrors :class:`GrammarFile` for the sharded format: the
    ``section_bytes`` breakdown nests every shard's own sections under
    ``shard<i>/<section>`` keys next to the framing's ``meta`` entry.
    """

    data: Buffer
    section_bytes: Dict[str, int]

    @property
    def total_bytes(self) -> int:
        """Size of the complete container in bytes."""
        return len(self.data)

    def bits_per_edge(self, num_edges: int) -> float:
        """bpe against a given original edge count (paper's metric)."""
        if num_edges <= 0:
            raise EncodingError("num_edges must be positive for bpe")
        return 8.0 * self.total_bytes / num_edges

    def write(self, path: Union[str, Path]) -> None:
        """Write the container to ``path``."""
        Path(path).write_bytes(self.data)

    @classmethod
    def read(cls, path: Union[str, Path]) -> "ShardedFile":
        """Load a container previously written with :meth:`write`.

        Zero-copy: the data is memory-mapped, not read eagerly.
        """
        data = map_file(path)
        return cls(data=data,
                   section_bytes=sharded_container_sections(data))


def is_sharded_container(data: Buffer) -> bool:
    """True when ``data`` frames a multi-shard ("GRPS") container."""
    return len(data) >= 5 and data[:4] == _SHARDED_MAGIC


#: Trailer-section tag: the boundary transitive closure.
_CLOSURE_TAG = 0x43  # 'C'
#: Trailer-section tag: persisted per-pattern RPQ product closures.
_RPQ_CLOSURE_TAG = 0x52  # 'R'


def encode_sharded_container(meta: bytes,
                             shard_blobs: Sequence[bytes],
                             closure: Optional[bytes] = None,
                             rpq_closures: Optional[bytes] = None
                             ) -> ShardedFile:
    """Frame a routing summary plus per-shard "GRPR" blobs.

    The framing is agnostic to the meta payload (built and consumed by
    :mod:`repro.sharding`); every shard blob must be a complete
    single-grammar container so the per-shard section accounting can be
    reused as-is.  ``closure`` (an encoded
    :class:`repro.partition.boundary.BoundaryClosure`) and
    ``rpq_closures`` (the per-pattern
    :class:`repro.partition.boundary.ProductClosure` table assembled by
    :mod:`repro.sharding`) are written as tagged trailer sections when
    given.
    """
    if not shard_blobs:
        raise EncodingError("a sharded container needs >= 1 shard")
    sections: Dict[str, int] = {"header": 5, "meta": len(meta)}
    out = bytearray()
    out.extend(_SHARDED_MAGIC)
    out.append(_VERSION)
    write_uvarint(out, len(shard_blobs))
    write_uvarint(out, len(meta))
    out.extend(meta)
    for index, blob in enumerate(shard_blobs):
        if blob[:4] != _MAGIC:
            raise EncodingError(
                f"shard {index} is not a grammar container (bad magic)"
            )
        write_uvarint(out, len(blob))
        out.extend(blob)
        for section, size in container_sections(blob).items():
            sections[f"shard{index}/{section}"] = size
    if closure is not None:
        out.append(_CLOSURE_TAG)
        write_uvarint(out, len(closure))
        out.extend(closure)
        sections["closure"] = len(closure)
    if rpq_closures is not None:
        out.append(_RPQ_CLOSURE_TAG)
        write_uvarint(out, len(rpq_closures))
        out.extend(rpq_closures)
        sections["rpq_closures"] = len(rpq_closures)
    return ShardedFile(data=bytes(out), section_bytes=sections)


#: One parsed section: ``(start offset, byte length)`` into the buffer.
_Span = Tuple[int, int]


class DecodedContainer:
    """A parsed "GRPS" framing with lazily materialized sections.

    Holds *spans* into the source buffer rather than copies: ``meta``,
    ``shard(i)``, ``closure`` and ``rpq_closures`` copy their payload
    into owned ``bytes`` on first access and cache it, so a reader that
    serves one shard of an N-shard file materializes ~1/N of the
    container (plus the trailers it asks for).
    :attr:`materialized_bytes` / :attr:`materialized_sections` account
    every copy — the cold-open benchmark gate and
    ``repro stats --timing`` read them.
    """

    __slots__ = ("data", "_meta_span", "_shard_spans", "_closure_span",
                 "_rpq_span", "_meta", "_shards", "_closure", "_rpq",
                 "materialized_bytes", "materialized_sections")

    def __init__(self, data: Buffer, meta_span: _Span,
                 shard_spans: Sequence[_Span],
                 closure_span: Optional[_Span],
                 rpq_span: Optional[_Span]) -> None:
        self.data = data
        self._meta_span = meta_span
        self._shard_spans = tuple(shard_spans)
        self._closure_span = closure_span
        self._rpq_span = rpq_span
        self._meta: Optional[bytes] = None
        self._shards: List[Optional[bytes]] = [None] * len(shard_spans)
        self._closure: Optional[bytes] = None
        self._rpq: Optional[bytes] = None
        #: Bytes copied out of the buffer so far, total / per section.
        self.materialized_bytes = 0
        self.materialized_sections: Dict[str, int] = {}

    def _take(self, name: str, span: _Span) -> bytes:
        start, length = span
        self.materialized_bytes += length
        self.materialized_sections[name] = length
        return bytes(self.data[start:start + length])

    @property
    def total_bytes(self) -> int:
        """Size of the complete container in bytes."""
        return len(self.data)

    @property
    def num_shards(self) -> int:
        """Number of embedded shard blobs (without decoding any)."""
        return len(self._shard_spans)

    @property
    def meta(self) -> bytes:
        """The routing-summary payload (materialized on first access)."""
        if self._meta is None:
            self._meta = self._take("meta", self._meta_span)
        return self._meta

    def shard(self, index: int) -> bytes:
        """Shard ``index``'s "GRPR" blob (materialized on first access)."""
        blob = self._shards[index]
        if blob is None:
            blob = self._take(f"shard{index}",
                              self._shard_spans[index])
            self._shards[index] = blob
        return blob

    def shard_view(self, index: int) -> Buffer:
        """A zero-copy view of shard ``index``'s blob.

        For header-only consumers (size accounting, k sniffing) that
        must not count as materialization.
        """
        start, length = self._shard_spans[index]
        return self.data[start:start + length]

    @property
    def shards(self) -> List[bytes]:
        """All shard blobs — the eager path for full-open readers."""
        return [self.shard(index) for index in range(self.num_shards)]

    @property
    def has_closure(self) -> bool:
        """Whether a boundary-closure trailer is present."""
        return self._closure_span is not None

    @property
    def has_rpq_closures(self) -> bool:
        """Whether an RPQ-closure trailer is present."""
        return self._rpq_span is not None

    @property
    def closure(self) -> Optional[bytes]:
        """The boundary-closure payload, or ``None`` when absent."""
        if self._closure_span is None:
            return None
        if self._closure is None:
            self._closure = self._take("closure", self._closure_span)
        return self._closure

    @property
    def rpq_closures(self) -> Optional[bytes]:
        """The RPQ-closure payload, or ``None`` when absent."""
        if self._rpq_span is None:
            return None
        if self._rpq is None:
            self._rpq = self._take("rpq_closures", self._rpq_span)
        return self._rpq

    def section_bytes(self) -> Dict[str, int]:
        """Per-section size breakdown without materializing anything.

        Same shape :func:`sharded_container_sections` always reported:
        framing entries plus every shard's own sections under
        ``shard<i>/<section>`` keys.
        """
        sections: Dict[str, int] = {"header": 5,
                                    "meta": self._meta_span[1]}
        for index in range(self.num_shards):
            for name, size in container_sections(
                    self.shard_view(index)).items():
                sections[f"shard{index}/{name}"] = size
        if self._closure_span is not None:
            sections["closure"] = self._closure_span[1]
        if self._rpq_span is not None:
            sections["rpq_closures"] = self._rpq_span[1]
        return sections


def decode_sharded_container(data: Buffer) -> DecodedContainer:
    """Parse a "GRPS" container into a :class:`DecodedContainer`.

    Only the framing is validated (and only the length headers are
    read — payloads stay in the source buffer until accessed); the
    shard blobs are decoded by :func:`decode_grammar`, the meta payload
    by :mod:`repro.sharding` and the closure payloads by
    :mod:`repro.partition.boundary`.
    """
    if len(data) < 6:
        raise EncodingError("sharded container too short")
    if data[:4] != _SHARDED_MAGIC:
        raise EncodingError("not a sharded container (bad magic)")
    if data[4] != _VERSION:
        raise EncodingError(
            f"unsupported sharded container version {data[4]}")
    try:
        pos = 5
        num_shards, pos = read_uvarint(data, pos)
        if num_shards < 1:
            raise EncodingError(
                "a sharded container needs >= 1 shard")
        meta_len, pos = read_uvarint(data, pos)
        if pos + meta_len > len(data):
            raise EncodingError("truncated sharded meta section")
        meta_span = (pos, meta_len)
        pos += meta_len
        shard_spans: List[_Span] = []
        for _ in range(num_shards):
            blob_len, pos = read_uvarint(data, pos)
            if pos + blob_len > len(data):
                raise EncodingError("truncated shard blob")
            shard_spans.append((pos, blob_len))
            pos += blob_len
        closure_span: Optional[_Span] = None
        rpq_span: Optional[_Span] = None
        while pos < len(data):
            tag = data[pos]
            pos += 1
            if tag == _CLOSURE_TAG and closure_span is None:
                name = "closure"
            elif tag == _RPQ_CLOSURE_TAG and rpq_span is None:
                name = "rpq closure"
            else:
                raise EncodingError(
                    f"unknown trailing section tag {tag:#04x} after "
                    "the last shard")
            section_len, pos = read_uvarint(data, pos)
            if pos + section_len > len(data):
                raise EncodingError(f"truncated {name} section")
            if tag == _CLOSURE_TAG:
                closure_span = (pos, section_len)
            else:
                rpq_span = (pos, section_len)
            pos += section_len
    except (IndexError, ValueError) as exc:
        raise EncodingError(f"corrupt sharded container: {exc}") \
            from None
    if pos != len(data):
        raise EncodingError(
            f"{len(data) - pos} trailing bytes after the last section")
    return DecodedContainer(data, meta_span, shard_spans,
                            closure_span, rpq_span)


def sharded_container_sections(data: Buffer) -> Dict[str, int]:
    """Per-section byte sizes of a serialized sharded container.

    ``{}`` for data that is not a well-formed "GRPS" container,
    matching the :func:`container_sections` convention.  Header-only:
    no payload is materialized.
    """
    try:
        return decode_sharded_container(data).section_bytes()
    except EncodingError:
        return {}
