"""Optional numpy backend for k2-tree rank support.

The k2-tree's only random-access primitive is ``rank1`` over the
internal-level bit array ``T`` (child navigation is
``rank1(i+1) * k^2``), so the whole query surface accelerates through
one data structure: the rank directory.  Two interchangeable builds:

* ``"python"`` — the original pure-Python directory (prefix 1-counts
  every 64 bits, O(64) tail scan per query).  Always available.
* ``"numpy"`` — ``T`` packed MSB-first with ``np.packbits``, a
  byte-popcount lookup table and one ``np.cumsum`` building a
  byte-granular prefix directory in a handful of vector ops; ``rank1``
  is then O(1) (one directory load plus one masked-byte popcount).

Outputs are bit-identical by construction — the differential tests in
``tests/test_k2tree.py`` hold both backends to the same answers on the
same trees, including at exact 64-bit block boundaries.

Selection mirrors :mod:`repro.queries.kernels`: the
``REPRO_K2_BACKEND`` environment variable (``auto`` / ``numpy`` /
``python``, default ``auto``) sets the process-wide default,
:func:`set_backend` switches it programmatically, and trees read the
default at construction time.  ``auto`` resolves to numpy when the
import succeeds and silently falls back to pure Python otherwise —
numpy is an accelerator here, never a dependency (``setup.py`` does not
require it, and the full suite passes without it).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.exceptions import EncodingError

try:  # soft dependency: the accelerated path only
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via set_backend
    _np = None

BACKENDS = ("auto", "numpy", "python")

_default = os.environ.get("REPRO_K2_BACKEND", "auto")


def numpy_available() -> bool:
    """Whether the numpy backend can be resolved at all."""
    return _np is not None


def validate_backend(name: str) -> str:
    """Return ``name`` if it names a backend, raise otherwise."""
    if name not in BACKENDS:
        raise EncodingError(
            f"unknown k2 backend {name!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    return name


def get_backend() -> str:
    """The configured default backend (possibly ``"auto"``)."""
    return validate_backend(_default)


def set_backend(name: str) -> str:
    """Set the process-wide default; returns the previous default.

    Affects trees constructed *afterwards* — existing trees keep the
    rank structure they were built with.
    """
    global _default
    previous = _default
    _default = validate_backend(name)
    return previous


def resolve_backend(name: Optional[str] = None) -> str:
    """The concrete backend (``"numpy"`` / ``"python"``) to build with.

    ``None`` takes the process default.  ``auto`` falls back to pure
    Python when numpy is absent; an *explicit* ``numpy`` request
    without numpy raises instead of silently degrading.
    """
    name = validate_backend(_default if name is None else name)
    if name == "auto":
        return "numpy" if _np is not None else "python"
    if name == "numpy" and _np is None:
        raise EncodingError(
            "k2 backend 'numpy' requested but numpy is not installed")
    return name


class PythonRank:
    """Prefix 1-counts every 64 bits; O(64) tail scan per query."""

    __slots__ = ("_bits", "_dir")

    def __init__(self, bits: Sequence[bool]) -> None:
        self._bits = bits
        directory = [0]
        count = 0
        for index, bit in enumerate(bits):
            if index and index % 64 == 0:
                directory.append(count)
            if bit:
                count += 1
        directory.append(count)
        self._dir = directory

    def rank1(self, position: int) -> int:
        """Number of 1-bits in ``bits[0:position]``."""
        block = position // 64
        count = self._dir[min(block, len(self._dir) - 1)]
        for index in range(block * 64, position):
            if self._bits[index]:
                count += 1
        return count


if _np is not None:
    #: Per-byte popcounts, and the mask keeping a byte's first ``r``
    #: (most significant) bits — the partial-byte tail of a rank query.
    _POPCOUNT = _np.array([bin(value).count("1") for value in range(256)],
                          dtype=_np.int64)
    _HEAD_MASK = [0] + [(0xFF << (8 - rem)) & 0xFF for rem in range(1, 8)]


class NumpyRank:
    """Packed bits + cumsum byte directory; O(1) per query."""

    __slots__ = ("_packed", "_dir")

    def __init__(self, bits: Sequence[bool]) -> None:
        if _np is None:  # pragma: no cover - guarded by resolve_backend
            raise EncodingError("numpy backend built without numpy")
        packed = _np.packbits(_np.asarray(bits, dtype=_np.uint8))
        self._packed = packed
        self._dir = _np.concatenate(
            (_np.zeros(1, dtype=_np.int64),
             _np.cumsum(_POPCOUNT[packed], dtype=_np.int64)))

    def rank1(self, position: int) -> int:
        """Number of 1-bits in ``bits[0:position]``."""
        byte, rem = divmod(position, 8)
        count = int(self._dir[byte])
        if rem:
            count += int(_POPCOUNT[self._packed[byte] & _HEAD_MASK[rem]])
        return count


def build_rank(bits: Sequence[bool], backend: Optional[str] = None):
    """A rank structure over ``bits`` using the resolved backend."""
    if resolve_backend(backend) == "numpy":
        return NumpyRank(bits)
    return PythonRank(bits)
