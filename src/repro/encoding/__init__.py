"""Binary serialization of SL-HR grammars and k2-trees.

The paper's output format (section III-C2) has two parts:

* the **start graph**, encoded with one k2-tree per edge label
  (adjacency matrices for rank-2 labels, incidence matrices plus a
  permutation table for hyperedge labels) — :mod:`startgraph`;
* the **productions**, encoded as bit-level edge lists with Elias
  delta codes — :mod:`rules`.

:mod:`container` wraps both in a self-describing byte format with a
magic number and varint section lengths, and provides the decoder that
rebuilds a working :class:`repro.core.SLHRGrammar`.

:mod:`k2tree` is also used standalone as the paper's main baseline
compressor (see :mod:`repro.baselines.k2baseline`).
"""

from repro.encoding.container import (
    DecodedContainer,
    GrammarFile,
    ShardedFile,
    container_sections,
    decode_grammar,
    decode_sharded_container,
    encode_grammar,
    encode_sharded_container,
    is_sharded_container,
    map_file,
    sharded_container_sections,
)
from repro.encoding.k2backend import (
    get_backend as get_k2_backend,
    numpy_available,
    set_backend as set_k2_backend,
)
from repro.encoding.k2tree import K2Tree
from repro.encoding.rules import decode_rules, encode_rules
from repro.encoding.startgraph import decode_start_graph, encode_start_graph

__all__ = [
    "DecodedContainer",
    "GrammarFile",
    "K2Tree",
    "ShardedFile",
    "container_sections",
    "decode_grammar",
    "decode_rules",
    "decode_sharded_container",
    "decode_start_graph",
    "encode_grammar",
    "encode_rules",
    "encode_sharded_container",
    "encode_start_graph",
    "get_k2_backend",
    "is_sharded_container",
    "map_file",
    "numpy_available",
    "set_k2_backend",
    "sharded_container_sections",
]
