"""Start-graph serialization (paper section III-C2).

The start graph is the large, incompressible remainder of a gRePair
grammar (the paper reports it usually accounts for > 90 % of the output
size), so it gets the compact k2-tree treatment:

* for every **rank-2 label** (terminal or nonterminal) the subgraph of
  its edges is an adjacency matrix encoded as one k2-tree — this is
  the vertical-partitioning RDF layout of [8];
* for every **other rank** the subgraph is an *incidence matrix*
  (edge rows x node columns) encoded as a k2-tree, plus a permutation
  table that restores the attachment order the matrix loses: the
  distinct permutations are enumerated and each edge stores an index
  in ``ceil(log2 #permutations)`` bits, exactly as the paper
  describes.

One deviation forced by correctness: gRePair can emit *parallel*
nonterminal edges (same label, same attachment — e.g. the paper's own
Figure 1 start graph ``S = A A A``), which an adjacency matrix cannot
express.  Extra copies are stored in a small escape list of
delta-coded (source, target, multiplicity) triples.

All integers in this stream are Elias delta codes (values shifted by
one where zero is possible).  The stream is self-delimiting given the
node count written up front.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.core.alphabet import Alphabet
from repro.core.hypergraph import Hypergraph
from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter
from repro.util.elias import decode_delta, encode_delta
from repro.encoding.k2tree import K2Tree


def _fixed_width(count: int) -> int:
    """Bits needed to address ``count`` distinct values (min 1)."""
    if count <= 1:
        return 1
    return (count - 1).bit_length()


def encode_start_graph(graph: Hypergraph, writer: BitWriter,
                       k: int = 2) -> None:
    """Append the start-graph encoding of ``graph`` to ``writer``.

    ``graph`` must be in canonical form (nodes ``1..m``); see
    :meth:`repro.core.SLHRGrammar.canonicalize`.
    """
    m = graph.node_size
    nodes = graph.nodes()
    if nodes and (min(nodes) != 1 or max(nodes) != m):
        raise EncodingError(
            "start graph must be canonical (nodes 1..m); call "
            "grammar.canonicalize() first"
        )
    encode_delta(writer, m + 1)
    encode_delta(writer, len(graph.ext) + 1)
    for node in graph.ext:
        encode_delta(writer, node)

    labels = sorted(graph.labels())
    encode_delta(writer, len(labels) + 1)
    for label in labels:
        edges = [graph.edge(eid) for eid in graph.edges_with_label(label)]
        rank = len(edges[0].att)
        encode_delta(writer, label)
        encode_delta(writer, rank)
        # Encode the label's subgraph both ways and keep the smaller:
        # matrix form (k2-tree) amortizes for large relations, a plain
        # delta edge list wins for the few-edge labels gRePair leaves
        # behind.  One flag bit records the choice.
        matrix = BitWriter()
        if rank == 2:
            _encode_adjacency(matrix, edges, m, k)
        else:
            _encode_incidence(matrix, edges, m, rank, k)
        listed = BitWriter()
        _encode_edge_list(listed, edges)
        if len(listed) < len(matrix):
            writer.write_bit(1)
            writer.extend(listed)
        else:
            writer.write_bit(0)
            writer.extend(matrix)


def _write_tree(writer: BitWriter, tree: K2Tree) -> None:
    encode_delta(writer, tree.t_length + 1)
    encode_delta(writer, tree.l_length + 1)
    tree.write(writer)


def _read_tree(reader: BitReader, size: int, k: int) -> K2Tree:
    t_len = decode_delta(reader) - 1
    l_len = decode_delta(reader) - 1
    return K2Tree.read(reader, k, size, t_len, l_len)


def _encode_adjacency(writer: BitWriter, edges, m: int, k: int) -> None:
    counts: Counter = Counter((e.att[0], e.att[1]) for e in edges)
    tree = K2Tree.from_cells(
        ((u - 1, v - 1) for (u, v) in counts), m, k
    )
    _write_tree(writer, tree)
    duplicates = {pair: c for pair, c in counts.items() if c > 1}
    encode_delta(writer, len(duplicates) + 1)
    for (u, v) in sorted(duplicates):
        encode_delta(writer, u)
        encode_delta(writer, v)
        encode_delta(writer, duplicates[(u, v)] - 1)  # extra copies


def _encode_edge_list(writer: BitWriter, edges) -> None:
    """Plain delta-coded edge list (fallback for tiny relations)."""
    encode_delta(writer, len(edges) + 1)
    for edge in edges:
        for node in edge.att:
            encode_delta(writer, node)


def _decode_edge_list(reader: BitReader, graph: Hypergraph, label: int,
                      rank: int) -> None:
    count = decode_delta(reader) - 1
    for _ in range(count):
        att = tuple(decode_delta(reader) for _ in range(rank))
        graph.add_edge(label, att)


def _encode_incidence(writer: BitWriter, edges, m: int, rank: int,
                      k: int) -> None:
    encode_delta(writer, len(edges) + 1)
    size = max(m, len(edges))
    cells = [(row, node - 1)
             for row, edge in enumerate(edges)
             for node in edge.att]
    _write_tree(writer, K2Tree.from_cells(cells, size, k))
    # Permutation table: per edge, the permutation that maps the
    # sorted node set back to attachment order.
    permutations: List[Tuple[int, ...]] = []
    index_of: Dict[Tuple[int, ...], int] = {}
    edge_perm: List[int] = []
    for edge in edges:
        ordered = sorted(edge.att)
        perm = tuple(ordered.index(node) for node in edge.att)
        if perm not in index_of:
            index_of[perm] = len(permutations)
            permutations.append(perm)
        edge_perm.append(index_of[perm])
    encode_delta(writer, len(permutations) + 1)
    element_width = _fixed_width(rank)
    for perm in permutations:
        for value in perm:
            writer.write_bits(value, element_width)
    perm_width = _fixed_width(len(permutations))
    for index in edge_perm:
        writer.write_bits(index, perm_width)


def decode_start_graph(reader: BitReader, alphabet: Alphabet,
                       k: int = 2) -> Hypergraph:
    """Inverse of :func:`encode_start_graph`.

    The alphabet is only used for sanity checks (label ranks); decoding
    is self-contained otherwise.
    """
    m = decode_delta(reader) - 1
    graph = Hypergraph()
    for _ in range(m):
        graph.add_node()
    ext_len = decode_delta(reader) - 1
    ext = [decode_delta(reader) for _ in range(ext_len)]
    num_labels = decode_delta(reader) - 1
    for _ in range(num_labels):
        label = decode_delta(reader)
        rank = decode_delta(reader)
        if label in alphabet and alphabet.rank(label) != rank:
            raise EncodingError(
                f"label {label}: stream says rank {rank}, alphabet says "
                f"{alphabet.rank(label)}"
            )
        as_list = reader.read_bit()
        if as_list:
            _decode_edge_list(reader, graph, label, rank)
        elif rank == 2:
            _decode_adjacency(reader, graph, label, m, k)
        else:
            _decode_incidence(reader, graph, label, m, rank, k)
    graph.set_external(ext)
    return graph


def _decode_adjacency(reader: BitReader, graph: Hypergraph, label: int,
                      m: int, k: int) -> None:
    tree = _read_tree(reader, m, k)
    cells = tree.cells()
    num_duplicates = decode_delta(reader) - 1
    multiplicity: Dict[Tuple[int, int], int] = {}
    for _ in range(num_duplicates):
        u = decode_delta(reader)
        v = decode_delta(reader)
        multiplicity[(u, v)] = decode_delta(reader)
    # Emit in canonical (attachment-sorted) order, parallel copies
    # adjacent — matching ``SLHRGrammar.canonicalize``.
    for row, col in cells:
        att = (row + 1, col + 1)
        for _ in range(1 + multiplicity.get(att, 0)):
            graph.add_edge(label, att)


def _decode_incidence(reader: BitReader, graph: Hypergraph, label: int,
                      m: int, rank: int, k: int) -> None:
    num_edges = decode_delta(reader) - 1
    size = max(m, num_edges)
    tree = _read_tree(reader, size, k)
    rows: Dict[int, List[int]] = {}
    for row, col in tree.cells():
        rows.setdefault(row, []).append(col + 1)
    num_perms = decode_delta(reader) - 1
    element_width = _fixed_width(rank)
    permutations = [
        tuple(reader.read_bits(element_width) for _ in range(rank))
        for _ in range(num_perms)
    ]
    perm_width = _fixed_width(num_perms)
    for row in range(num_edges):
        members = sorted(rows.get(row, ()))
        if len(members) != rank:
            raise EncodingError(
                f"incidence row {row} for label {label} has "
                f"{len(members)} nodes, expected {rank}"
            )
        perm = permutations[reader.read_bits(perm_width)]
        att = tuple(members[position] for position in perm)
        graph.add_edge(label, att)
