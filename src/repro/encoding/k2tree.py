"""k2-trees: compact compressed binary matrices (Brisaboa et al. [21]).

A k2-tree represents an ``n x n`` binary matrix (conceptually expanded
with zeros to the next power of ``k``) as a ``k^2``-ary tree: each node
covers a square submatrix; a submatrix of all zeros is a 0-leaf, other
submatrices are 1-nodes partitioned further, down to single cells.  The
tree is stored as two bit arrays in level order:

* ``T`` — the internal levels (one bit per node: 1 = subdivided),
* ``L`` — the last level (one bit per cell of each subdivided 2x2
  block... generally ``k^2`` cells per subdivided minimal block).

Navigation uses rank queries on ``T``: the children of the i-th 1-bit
of ``T`` start at position ``rank1(T, i) * k^2``.  We precompute a
block-wise rank directory at decode time, so cell / row / column
queries run in O(k^2 log_k n) as in the paper.

The paper uses k2-trees with ``k = 2`` ("as this provides the best
compression") for the start graph of the grammar, for the plain
k2-tree baseline compressor, and (per edge label) for the RDF
representation of [8].

The rank directory is pluggable (see :mod:`repro.encoding.k2backend`):
a numpy build packs ``T`` and answers ``rank1`` in O(1) off a cumsum
directory, the pure-Python build keeps the original 64-bit-block
directory.  Both are bit-identical; numpy is optional.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.encoding.k2backend import build_rank
from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter
from repro.util.varint import read_uvarint, write_uvarint


def _next_power(base: int, minimum: int) -> int:
    power = 1
    while power < minimum:
        power *= base
    return power


class K2Tree:
    """An immutable k2-tree over a set of (row, column) 1-cells.

    Rows and columns are 0-based.  Build with :meth:`from_cells`,
    serialize with :meth:`to_bytes`, restore with :meth:`from_bytes`.
    """

    def __init__(self, k: int, size: int, virtual_size: int,
                 t_bits: List[bool], l_bits: List[bool],
                 backend: Optional[str] = None) -> None:
        if k < 2:
            raise EncodingError(f"k must be >= 2, got {k}")
        self.k = k
        #: Logical matrix dimension (before power-of-k expansion).
        self.size = size
        #: Expanded dimension (power of k).
        self.virtual_size = virtual_size
        self._t = t_bits
        self._l = l_bits
        #: Rank support over ``T``; ``backend=None`` takes the process
        #: default from :mod:`repro.encoding.k2backend`.
        self._rank = build_rank(t_bits, backend)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_cells(cls, cells: Iterable[Tuple[int, int]], size: int,
                   k: int = 2,
                   backend: Optional[str] = None) -> "K2Tree":
        """Build a k2-tree for the 1-cells of an ``size x size`` matrix.

        Cells outside the matrix raise :class:`EncodingError`.  The
        construction is level-order over the occupied blocks only, so
        it runs in O(m log n) for m cells.
        """
        cell_list = sorted(set(cells))
        for row, col in cell_list:
            if not (0 <= row < size and 0 <= col < size):
                raise EncodingError(
                    f"cell ({row}, {col}) outside {size}x{size} matrix"
                )
        virtual = _next_power(k, max(size, 1))
        t_bits: List[bool] = []
        l_bits: List[bool] = []
        if cell_list and virtual > 1:
            # Each level maps occupied blocks to their cells.  A block
            # is identified by its (block_row, block_col) at the
            # current granularity.
            level_cells: List[Tuple[int, int]] = cell_list
            block = virtual // k  # child block size at the root level
            # Root is implicit (the whole matrix, known non-empty).
            current_blocks: List[Tuple[int, int, List[Tuple[int, int]]]]
            current_blocks = [(0, 0, level_cells)]
            while block >= 1:
                next_blocks = []
                target = l_bits if block == 1 else t_bits
                for base_row, base_col, members in current_blocks:
                    buckets: dict = {}
                    for row, col in members:
                        idx = (((row - base_row) // block) * k
                               + (col - base_col) // block)
                        buckets.setdefault(idx, []).append((row, col))
                    for idx in range(k * k):
                        sub = buckets.get(idx)
                        target.append(sub is not None)
                        if sub is not None and block > 1:
                            next_blocks.append(
                                (base_row + (idx // k) * block,
                                 base_col + (idx % k) * block,
                                 sub)
                            )
                current_blocks = next_blocks
                block //= k
        return cls(k, size, virtual, t_bits, l_bits, backend=backend)

    # ------------------------------------------------------------------
    # Rank support
    # ------------------------------------------------------------------
    def _rank1(self, position: int) -> int:
        """Number of 1-bits in ``T[0:position]``."""
        return self._rank.rank1(position)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def bit_count(self) -> int:
        """Total payload bits (|T| + |L|), the paper's size measure."""
        return len(self._t) + len(self._l)

    @property
    def t_length(self) -> int:
        """Number of internal-level bits (``|T|``)."""
        return len(self._t)

    @property
    def l_length(self) -> int:
        """Number of last-level bits (``|L|``)."""
        return len(self._l)

    def is_empty(self) -> bool:
        """True if the matrix has no 1-cells."""
        return not self._t and not self._l

    def _children_start(self, node_pos: int) -> int:
        """Bit offset of the children block of the 1-bit at node_pos."""
        return self._rank1(node_pos + 1) * self.k * self.k

    def _t_bit(self, index: int) -> bool:
        """Bounds-checked internal-level bit (corrupt streams raise)."""
        if not 0 <= index < len(self._t):
            raise EncodingError(
                f"k2-tree T index {index} out of range (corrupt tree?)"
            )
        return self._t[index]

    def _l_bit(self, index: int) -> bool:
        """Bounds-checked last-level bit (corrupt streams raise)."""
        if not 0 <= index < len(self._l):
            raise EncodingError(
                f"k2-tree L index {index} out of range (corrupt tree?)"
            )
        return self._l[index]

    def get(self, row: int, col: int) -> bool:
        """Cell query: True if (row, col) is a 1."""
        if not (0 <= row < self.size and 0 <= col < self.size):
            raise EncodingError(
                f"cell ({row}, {col}) outside {self.size}x{self.size}"
            )
        if self.is_empty():
            return False
        k = self.k
        block = self.virtual_size // k
        offset = 0  # position of the current children block in T (bits)
        while True:
            idx = offset + (row // block) * k + (col // block)
            row %= block
            col %= block
            if block == 1:
                return self._l_bit(idx - len(self._t))
            if not self._t_bit(idx):
                return False
            offset = self._children_start(idx)
            block //= k

    def row_ones(self, row: int) -> List[int]:
        """Direct neighbors: columns with a 1 in ``row``."""
        return sorted(col for col in self._axis_ones(row, transposed=False))

    def col_ones(self, col: int) -> List[int]:
        """Reverse neighbors: rows with a 1 in ``col``."""
        return sorted(row for row in self._axis_ones(col, transposed=True))

    def rows_ones(self, rows: Sequence[int]) -> List[List[int]]:
        """Batched :meth:`row_ones`: one answer list per queried row.

        Queries descending into the same subtree share the traversal
        (and its rank calls), so a batch costs one tree walk over the
        union of the paths instead of one walk per row.  Answers equal
        ``[self.row_ones(r) for r in rows]`` exactly.
        """
        return self._axis_ones_batch(rows, transposed=False)

    def cols_ones(self, cols: Sequence[int]) -> List[List[int]]:
        """Batched :meth:`col_ones` (see :meth:`rows_ones`)."""
        return self._axis_ones_batch(cols, transposed=True)

    def _axis_ones_batch(self, fixed_list: Sequence[int],
                         transposed: bool) -> List[List[int]]:
        for fixed in fixed_list:
            if not 0 <= fixed < self.size:
                raise EncodingError(f"index {fixed} outside {self.size}")
        results: List[List[int]] = [[] for _ in fixed_list]
        if self.is_empty() or not fixed_list:
            return results
        k = self.k
        # stack: (children-block offset, block size, base of the free
        # axis, [(fixed offset within block, query number), ...])
        stack = [(0, self.virtual_size // k, 0,
                  [(fixed, query) for query, fixed
                   in enumerate(fixed_list)])]
        while stack:
            offset, block, base, members = stack.pop()
            groups: dict = {}
            for fix, query in members:
                groups.setdefault(fix // block, []).append(
                    (fix % block, query))
            for j in range(k):
                free_base = base + j * block
                if free_base >= self.size:
                    continue
                for fixed_child, sub in groups.items():
                    if transposed:
                        idx = offset + j * k + fixed_child
                    else:
                        idx = offset + fixed_child * k + j
                    if block == 1:
                        if self._l_bit(idx - len(self._t)):
                            for _, query in sub:
                                results[query].append(free_base)
                    elif self._t_bit(idx):
                        stack.append((self._children_start(idx),
                                      block // k, free_base, sub))
        return [sorted(result) for result in results]

    def _axis_ones(self, fixed: int, transposed: bool) -> Iterator[int]:
        if not 0 <= fixed < self.size:
            raise EncodingError(f"index {fixed} outside {self.size}")
        if self.is_empty():
            return
        k = self.k
        # stack: (bit offset of children block, block size, fixed offset
        # within block, base of the free axis)
        stack = [(0, self.virtual_size // k, fixed, 0)]
        while stack:
            offset, block, fix, base = stack.pop()
            for j in range(k):
                if transposed:
                    idx = offset + j * k + fix // block
                else:
                    idx = offset + (fix // block) * k + j
                free_base = base + j * block
                if free_base >= self.size:
                    continue
                if block == 1:
                    if self._l_bit(idx - len(self._t)):
                        yield free_base
                elif self._t_bit(idx):
                    stack.append((self._children_start(idx), block // k,
                                  fix % block, free_base))

    def cells(self) -> List[Tuple[int, int]]:
        """All 1-cells, sorted (decompression)."""
        result: List[Tuple[int, int]] = []
        if self.is_empty():
            return result
        k = self.k
        stack = [(0, self.virtual_size // k, 0, 0)]
        while stack:
            offset, block, base_row, base_col = stack.pop()
            for idx in range(k * k):
                row = base_row + (idx // k) * block
                col = base_col + (idx % k) * block
                position = offset + idx
                if block == 1:
                    if self._l_bit(position - len(self._t)):
                        result.append((row, col))
                elif self._t_bit(position):
                    stack.append((self._children_start(position),
                                  block // k, row, col))
        return sorted(result)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def write(self, writer: BitWriter) -> None:
        """Append the payload bits (T then L) to an open bit stream."""
        writer.write_bools(self._t)
        writer.write_bools(self._l)

    def to_bytes(self) -> bytes:
        """Standalone serialization: header varints + payload bits."""
        header = bytearray()
        write_uvarint(header, self.k)
        write_uvarint(header, self.size)
        write_uvarint(header, len(self._t))
        write_uvarint(header, len(self._l))
        writer = BitWriter()
        self.write(writer)
        return bytes(header) + writer.to_bytes()

    @classmethod
    def read(cls, reader: BitReader, k: int, size: int, t_len: int,
             l_len: int, backend: Optional[str] = None) -> "K2Tree":
        """Read payload bits from an open stream (header known)."""
        t_bits = reader.read_bools(t_len)
        l_bits = reader.read_bools(l_len)
        return cls(k, size, _next_power(k, max(size, 1)), t_bits,
                   l_bits, backend=backend)

    @classmethod
    def from_bytes(cls, data: bytes) -> "K2Tree":
        """Inverse of :meth:`to_bytes`."""
        k, pos = read_uvarint(data, 0)
        size, pos = read_uvarint(data, pos)
        t_len, pos = read_uvarint(data, pos)
        l_len, pos = read_uvarint(data, pos)
        reader = BitReader(data[pos:])
        return cls.read(reader, k, size, t_len, l_len)

    @property
    def byte_size(self) -> int:
        """Serialized size in bytes (header + payload)."""
        return len(self.to_bytes())

    def __repr__(self) -> str:
        return (f"K2Tree(k={self.k}, size={self.size}, "
                f"bits={self.bit_count})")
