"""Production serialization (paper section III-C2).

Right-hand sides are expected to be very small graphs, so they are
stored as plain bit-level edge lists rather than k2-trees, following
the paper's format:

* every production begins with its edge count (delta code),
* every edge stores one terminal/nonterminal marker bit, the number of
  attached nodes, the delta-coded node IDs each preceded by one
  external-marker bit, and finally the delta-coded label;
* external nodes carry IDs whose ascending order equals the external
  order (guaranteed by :meth:`repro.core.SLHRGrammar.canonicalize`,
  which numbers them ``1..rank``).

Two small extensions over the paper's description keep decoding
lossless in general:

* the left-hand-side label and the node/external counts are written
  explicitly (pruning and virtual-edge removal can leave isolated
  nodes in a right-hand side that no edge list would mention),
* the paper's example encodes only its specific figure; the counts
  make the format self-delimiting.
"""

from __future__ import annotations

from typing import List

from repro.core.alphabet import Alphabet
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter
from repro.util.elias import decode_delta, encode_delta


def encode_rules(grammar: SLHRGrammar, writer: BitWriter) -> None:
    """Append all productions of ``grammar`` to ``writer``.

    Rules are written in ascending left-hand-side label order, which is
    also the order :func:`decode_rules` re-registers them in.
    """
    order = sorted(grammar.nonterminals())
    encode_delta(writer, len(order) + 1)
    for lhs in order:
        _encode_rule(grammar, lhs, writer)


def _encode_rule(grammar: SLHRGrammar, lhs: int,
                 writer: BitWriter) -> None:
    rhs = grammar.rhs(lhs)
    rank = rhs.rank
    if tuple(rhs.ext) != tuple(range(1, rank + 1)):
        raise EncodingError(
            f"rule {lhs} is not canonical (ext must be 1..rank); call "
            "grammar.canonicalize() first"
        )
    nodes = rhs.nodes()
    if nodes and max(nodes) != len(nodes):
        raise EncodingError(f"rule {lhs}: node IDs must be 1..n")
    encode_delta(writer, lhs)
    encode_delta(writer, rhs.node_size + 1)
    encode_delta(writer, rank + 1)
    encode_delta(writer, rhs.num_edges + 1)
    alphabet = grammar.alphabet
    for _, edge in sorted(rhs.edges()):
        writer.write_bit(0 if alphabet.is_terminal(edge.label) else 1)
        encode_delta(writer, len(edge.att))
        for node in edge.att:
            writer.write_bit(1 if node <= rank else 0)
            encode_delta(writer, node)
        encode_delta(writer, edge.label)


def decode_rules(reader: BitReader, alphabet: Alphabet,
                 grammar: SLHRGrammar) -> List[int]:
    """Read productions from ``reader`` into ``grammar``.

    Nonterminal labels referenced before the alphabet knows them are
    registered on the fly (the container encodes the alphabet up
    front, so in practice this only validates).  Returns the decoded
    left-hand-side labels in stream order.
    """
    count = decode_delta(reader) - 1
    decoded: List[int] = []
    for _ in range(count):
        lhs = decode_delta(reader)
        num_nodes = decode_delta(reader) - 1
        rank = decode_delta(reader) - 1
        num_edges = decode_delta(reader) - 1
        rhs = Hypergraph()
        for _ in range(num_nodes):
            rhs.add_node()
        for _ in range(num_edges):
            is_nonterminal = reader.read_bit()
            arity = decode_delta(reader)
            att = []
            for _ in range(arity):
                reader.read_bit()  # external marker (implied by ID)
                att.append(decode_delta(reader))
            label = decode_delta(reader)
            if label in alphabet:
                if alphabet.is_terminal(label) == bool(is_nonterminal):
                    raise EncodingError(
                        f"rule {lhs}: edge label {label} terminal flag "
                        "mismatch"
                    )
            rhs.add_edge(label, att)
        rhs.set_external(tuple(range(1, rank + 1)))
        grammar.add_rule(lhs, rhs)
        decoded.append(lhs)
    return decoded
