"""Command-line interface: compress, decompress, inspect, query.

A thin production-style front end over
:class:`repro.api.CompressedGraph` and
:class:`repro.sharding.ShardedCompressedGraph`, so the compressor is
usable without writing Python::

    python -m repro.cli compress graph.tsv graph.grpr
    python -m repro.cli compress graph.tsv graph.grps --shards 4 --parallel
    python -m repro.cli stats graph.grpr
    python -m repro.cli decompress graph.grpr roundtrip.tsv
    python -m repro.cli query graph.grpr reach 4 17
    python -m repro.cli query graph.grps out 4
    python -m repro.cli query graph.grpr path 4 17
    python -m repro.cli query graph.grpr components

Graphs are read/written as edge lists (``source target [label]`` per
line, ``#`` comments allowed); compressed grammars use the paper's
binary container format — single-grammar ("GRPR") or multi-shard
("GRPS"), selected at compression time with ``--shards`` and
auto-detected everywhere else.  Every subcommand reports library
errors (:class:`repro.exceptions.ReproError`) and I/O failures on
stderr with exit code 2.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import (
    ENGINES,
    CompressedGraph,
    GRePairSettings,
    ShardedCompressedGraph,
    open_compressed,
)
from repro.core.orders import NODE_ORDERS
from repro.datasets.io import read_edge_list, write_edge_list
from repro.exceptions import ReproError
from repro.sharding import PARTITIONERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gRePair grammar-based graph compression "
                    "(Maneth & Peternek, ICDE 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compress", help="edge list -> .grpr")
    comp.add_argument("input", type=Path)
    comp.add_argument("output", type=Path)
    comp.add_argument("--max-rank", type=int, default=4,
                      help="maximal digram rank (paper default: 4)")
    comp.add_argument("--order", choices=sorted(NODE_ORDERS),
                      default="fp", help="node order (default: fp)")
    comp.add_argument("--seed", type=int, default=0,
                      help="seed for the random order")
    comp.add_argument("--engine", choices=list(ENGINES),
                      default="incremental",
                      help="occurrence maintenance: incremental "
                           "(default, no re-count passes) or recount "
                           "(legacy oracle)")
    comp.add_argument("--no-virtual-edges", action="store_true",
                      help="disable the disconnected-components pass")
    comp.add_argument("--no-prune", action="store_true",
                      help="disable grammar pruning")
    comp.add_argument("--no-names", action="store_true",
                      help="drop label names from the output")
    comp.add_argument("--no-validate", action="store_true",
                      help="skip the post-run grammar validity check "
                           "(for tight benchmark loops)")
    comp.add_argument("--shards", type=int, default=1,
                      help="partition across N per-shard grammars "
                           "(writes a multi-shard container; default 1)")
    comp.add_argument("--partitioner", choices=sorted(PARTITIONERS),
                      default="hash",
                      help="node-to-shard assignment (default: hash; "
                           "connectivity keeps components together)")
    comp.add_argument("--parallel", action="store_true",
                      help="compress shards on a thread pool "
                           "(only meaningful with --shards > 1)")

    dec = sub.add_parser("decompress", help=".grpr -> edge list")
    dec.add_argument("input", type=Path)
    dec.add_argument("output", type=Path)

    stats = sub.add_parser("stats", help="inspect a .grpr container")
    stats.add_argument("input", type=Path)

    query = sub.add_parser("query", help="evaluate queries on a .grpr")
    query.add_argument("input", type=Path)
    query.add_argument("kind",
                       choices=["reach", "out", "in", "neighborhood",
                                "degree", "path", "components",
                                "nodes", "edges"])
    query.add_argument("args", nargs="*", type=int,
                       help="node IDs (reach/path: two; "
                            "out/in/neighborhood/degree: one)")

    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    graph, alphabet, _ = read_edge_list(args.input)
    settings = GRePairSettings(
        max_rank=args.max_rank,
        order=args.order,
        seed=args.seed,
        virtual_edges=not args.no_virtual_edges,
        prune=not args.no_prune,
        engine=args.engine,
    )
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1:
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, settings,
            shards=args.shards,
            partitioner=args.partitioner,
            parallel=args.parallel,
            validate=not args.no_validate,
        )
    else:
        handle = CompressedGraph.compress(graph, alphabet, settings,
                                          validate=not args.no_validate)
    blob = handle.save(args.output,
                       include_names=not args.no_names)
    bpe = blob.bits_per_edge(max(1, graph.num_edges))
    print(f"{args.input}: |V|={graph.node_size} |E|={graph.num_edges}")
    print(f"grammar: {handle.summary()}")
    print(f"output:  {blob.total_bytes} bytes ({bpe:.2f} bpe) "
          f"-> {args.output}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    handle = open_compressed(args.input)
    graph = handle.decompress()
    write_edge_list(graph, handle.alphabet, args.output)
    print(f"{args.input}: {handle.summary()} -> "
          f"|V|={graph.node_size} |E|={graph.num_edges} "
          f"-> {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    handle = open_compressed(args.input)
    sections = handle.sizes
    print(f"container:      {handle.total_bytes} bytes")
    if sections:
        breakdown = ", ".join(f"{name}={size}"
                              for name, size in sections.items())
        print(f"sections:       {breakdown}")
    if isinstance(handle, ShardedCompressedGraph):
        print(f"shards:         {handle.num_shards}")
        print(f"boundary edges: {handle.boundary_edge_count}")
        for index, shard in enumerate(handle.shards):
            grammar = shard.grammar
            print(f"shard {index}:        {grammar.num_rules} rules, "
                  f"|G|={grammar.size}, "
                  f"{shard.node_count()} derived nodes")
    else:
        grammar = handle.grammar
        print(f"rules:          {grammar.num_rules}")
        print(f"grammar size:   |G| = {grammar.size}")
        print(f"grammar height: {grammar.height()}")
        print(f"start graph:    {grammar.start.node_size} nodes, "
              f"{grammar.start.num_edges} edges")
    print(f"derived graph:  {handle.node_count()} nodes, "
          f"{handle.edge_count()} edges")
    edges = max(1, handle.edge_count())
    print(f"bpe:            {8.0 * handle.total_bytes / edges:.2f}")
    cache = handle.cache_info
    print(f"query cache:    capacity={cache['capacity']} "
          f"hits={cache['hits']} misses={cache['misses']}")
    return 0


def _require_arity(kind: str, args: List[int], arity: int) -> None:
    if len(args) != arity:
        noun = "node ID" if arity == 1 else "node IDs"
        raise ReproError(f"{kind} needs exactly {arity} {noun}")


def _cmd_query(args: argparse.Namespace) -> int:
    handle = open_compressed(args.input)
    kind = args.kind
    if kind == "reach":
        _require_arity(kind, args.args, 2)
        source, target = args.args
        answer = handle.reach(source, target)
        print(f"reach({source}, {target}) = {answer}")
        return 0 if answer else 1
    if kind == "path":
        _require_arity(kind, args.args, 2)
        source, target = args.args
        path = handle.path(source, target)
        if path is None:
            print("none")
            return 1
        print(" ".join(map(str, path)))
        return 0
    if kind in ("out", "in", "neighborhood"):
        _require_arity(kind, args.args, 1)
        node = args.args[0]
        neighbors = {"out": handle.out,
                     "in": handle.in_,
                     "neighborhood": handle.neighborhood}[kind](node)
        print(" ".join(map(str, neighbors)))
        return 0
    if kind == "degree":
        if not args.args:
            # Extrema count every edge (true degrees, one grammar pass).
            extrema = handle.degree()
            for name in ("max_out", "min_out", "max_in", "min_in",
                         "max", "min"):
                print(f"{name}: {extrema[name]}")
            return 0
        _require_arity(kind, args.args, 1)
        node = args.args[0]
        print(f"out={handle.degree(node, 'out')} "
              f"in={handle.degree(node, 'in')} (distinct neighbors)")
        return 0
    if kind == "components":
        print(handle.components())
        return 0
    if kind == "nodes":
        print(handle.node_count())
        return 0
    print(handle.edge_count())
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "stats": _cmd_stats,
    "query": _cmd_query,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Library errors (every :class:`ReproError` subclass) and I/O
    failures print ``error: ...`` to stderr and exit with code 2,
    uniformly across subcommands.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
