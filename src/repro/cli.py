"""Command-line interface: compress, inspect, query — and serve.

A thin production-style front end over
:class:`repro.api.CompressedGraph` and
:class:`repro.sharding.ShardedCompressedGraph`, so the compressor is
usable without writing Python::

    python -m repro.cli compress graph.tsv graph.grpr
    python -m repro.cli compress graph.tsv graph.grps --shards 4 --parallel
    python -m repro.cli compress graph.tsv graph.grps --shards 4 \
        --parallel process
    python -m repro.cli stats graph.grpr
    python -m repro.cli decompress graph.grpr roundtrip.tsv
    python -m repro.cli query graph.grpr reach 4 17
    python -m repro.cli query graph.grps out 4
    python -m repro.cli query graph.grps rpq 'a(b|c)*' 4 17
    python -m repro.cli query graph.grps pattern-count digram a b
    python -m repro.cli serve graph.grps --address 127.0.0.1:8437
    python -m repro.cli serve graph.grps --replicas 2
    python -m repro.cli shard-serve graph.grps --shard 1 --epoch 3
    python -m repro.cli manifest graph.grps cluster.json \
        --endpoints 10.0.0.5:9000,10.0.0.6:9000 10.0.0.7:9000
    python -m repro.cli serve --manifest cluster.json
    python -m repro.cli connect 127.0.0.1:8437 rpq 'a(b|c)*' 4 17
    python -m repro.cli connect 127.0.0.1:8437 --info

``serve`` starts the socket deployment of
:mod:`repro.serving.router` — one forked process per shard
(``--replicas N`` forks N failover copies of each) plus a router
multiplexing planned batches — and blocks until interrupted.  For
multi-host topologies the pieces start independently: ``shard-serve``
brings up one shard standalone, ``manifest`` writes the cluster file
naming every shard's replica endpoints, and ``serve --manifest``
starts a router over those pre-existing servers (validating the
container hash and epoch of each before answering).  ``connect`` runs
the same query surface as ``query`` against a running server,
printing identical output (so scripts can switch between a local file
and a served endpoint by swapping one word).

Graphs are read/written as edge lists (``source target [label]`` per
line, ``#`` comments allowed); compressed grammars use the paper's
binary container format — single-grammar ("GRPR") or multi-shard
("GRPS"), selected at compression time with ``--shards`` and
auto-detected everywhere else.  Every subcommand reports library
errors (:class:`repro.exceptions.ReproError`) and I/O failures on
stderr with exit code 2.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Callable, List, Optional

from repro import (
    ENGINES,
    CompressedGraph,
    GRePairSettings,
    ShardedCompressedGraph,
    open_compressed,
)
from repro.core.orders import NODE_ORDERS
from repro.datasets.io import read_edge_list, write_edge_list
from repro.exceptions import ReproError
from repro.sharding import PARTITIONERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gRePair grammar-based graph compression "
                    "(Maneth & Peternek, ICDE 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compress", help="edge list -> .grpr")
    comp.add_argument("input", type=Path)
    comp.add_argument("output", type=Path)
    comp.add_argument("--max-rank", type=int, default=4,
                      help="maximal digram rank (paper default: 4)")
    comp.add_argument("--order", choices=sorted(NODE_ORDERS),
                      default="fp", help="node order (default: fp)")
    comp.add_argument("--seed", type=int, default=0,
                      help="seed for the random order")
    comp.add_argument("--engine", choices=list(ENGINES),
                      default="incremental",
                      help="occurrence maintenance: incremental "
                           "(default, no re-count passes) or recount "
                           "(legacy oracle)")
    comp.add_argument("--no-virtual-edges", action="store_true",
                      help="disable the disconnected-components pass")
    comp.add_argument("--no-prune", action="store_true",
                      help="disable grammar pruning")
    comp.add_argument("--no-names", action="store_true",
                      help="drop label names from the output")
    comp.add_argument("--no-validate", action="store_true",
                      help="skip the post-run grammar validity check "
                           "(for tight benchmark loops)")
    comp.add_argument("--shards", type=int, default=1,
                      help="partition across N per-shard grammars "
                           "(writes a multi-shard container; default 1)")
    comp.add_argument("--partitioner", choices=sorted(PARTITIONERS),
                      default="hash",
                      help="node-to-shard assignment (default: hash; "
                           "connectivity keeps components together; "
                           "bfs/label minimize the edge cut so even a "
                           "single component splits cleanly)")
    comp.add_argument("--closure", action="store_true",
                      help="build the boundary transitive closure and "
                           "persist it in the container, so servers "
                           "answer cross-shard reach without a warm-up "
                           "rebuild (needs --shards > 1)")
    comp.add_argument("--parallel", nargs="?", const="thread",
                      choices=["thread", "process"], default=None,
                      help="compress shards concurrently: 'thread' "
                           "(the default when the flag is given bare) "
                           "or 'process' (forked workers, one "
                           "compression per core; only meaningful "
                           "with --shards > 1)")

    dec = sub.add_parser("decompress", help=".grpr -> edge list")
    dec.add_argument("input", type=Path)
    dec.add_argument("output", type=Path)

    stats = sub.add_parser("stats", help="inspect a .grpr container")
    stats.add_argument("input", type=Path)
    stats.add_argument("--timing", action="store_true",
                       help="also measure cold/warm open time and "
                            "report per-section bytes materialized "
                            "by the decoder (full open vs a "
                            "single-shard lazy open)")

    query = sub.add_parser("query", help="evaluate queries on a .grpr")
    query.add_argument("input", type=Path)
    query.add_argument("kind",
                       choices=["reach", "out", "in", "neighborhood",
                                "degree", "path", "components",
                                "nodes", "edges", "rpq",
                                "pattern-count", "out-edges"])
    query.add_argument("args", nargs="*",
                       help="node IDs (reach/path: two; out/in/"
                            "neighborhood/degree/out-edges: one); "
                            "rpq: PATTERN SRC DST; pattern-count: "
                            "SUBKIND plus its arguments")

    srv = sub.add_parser("serve",
                         help="serve a container on a socket "
                              "(forked shard processes + a router, "
                              "or --manifest for remote shards)")
    srv.add_argument("input", type=Path, nargs="?", default=None,
                     help="the container to serve (optional with "
                          "--manifest when the manifest names one)")
    srv.add_argument("--address", default="127.0.0.1:0",
                     help="endpoint to bind: 'host:port' (port 0 "
                          "picks a free one) or 'unix:/path' "
                          "(default: 127.0.0.1:0)")
    srv.add_argument("--codec", choices=["json", "binary"],
                     default="json",
                     help="wire codec for shard links and replies "
                          "(default: json)")
    srv.add_argument("--cache-size", type=int, default=None,
                     help="router-side query-result LRU capacity "
                          "(default: the library default)")
    srv.add_argument("--pipeline", type=int, default=None,
                     help="concurrently evaluating batches per server "
                          "process (the event loop's worker pool; "
                          "default: 16)")
    srv.add_argument("--replicas", type=int, default=1,
                     help="forked replica processes per shard "
                          "(round-robin reads + failover; default: 1)")
    srv.add_argument("--manifest", type=Path, default=None,
                     help="route to pre-existing shard servers named "
                          "by this cluster-manifest file instead of "
                          "forking loopback children")
    srv.add_argument("--shard-timeout", type=float, default=None,
                     help="per-request timeout on router-to-shard "
                          "links, seconds (default: 30)")
    srv.add_argument("--ready-file", type=Path, default=None,
                     help="write the bound endpoint to this file "
                          "once serving (for scripts and tests)")

    shardsrv = sub.add_parser(
        "shard-serve",
        help="serve ONE shard of a container standalone (the "
             "building block of a --manifest deployment)")
    shardsrv.add_argument("input", type=Path)
    shardsrv.add_argument("--shard", type=int, default=0,
                          help="which shard of the container to "
                               "serve (default: 0)")
    shardsrv.add_argument("--address", default="127.0.0.1:0",
                          help="endpoint to bind (default: "
                               "127.0.0.1:0)")
    shardsrv.add_argument("--codec", choices=["json", "binary"],
                          default="json",
                          help="wire codec (default: json)")
    shardsrv.add_argument("--epoch", type=int, default=0,
                          help="deployment generation reported to "
                               "routers (default: 0)")
    shardsrv.add_argument("--cache-size", type=int, default=None,
                          help="query-result LRU capacity")
    shardsrv.add_argument("--pipeline", type=int, default=None,
                          help="concurrently evaluating batches "
                               "(default: 16)")
    shardsrv.add_argument("--ready-file", type=Path, default=None,
                          help="write the bound endpoint to this "
                               "file once serving")

    man = sub.add_parser(
        "manifest",
        help="write a cluster-manifest file for already-running "
             "shard servers")
    man.add_argument("input", type=Path,
                     help="the container the shard servers decoded")
    man.add_argument("output", type=Path,
                     help="manifest file to write (JSON)")
    man.add_argument("--endpoints", nargs="+", required=True,
                     metavar="EP[,EP...]",
                     help="one argument per shard: that shard's "
                          "replica endpoints, comma-separated")
    man.add_argument("--epoch", type=int, default=0,
                     help="deployment generation (default: 0)")
    man.add_argument("--codec", choices=["json", "binary"],
                     default="json",
                     help="wire codec routers use on shard links "
                          "(default: json)")

    conn = sub.add_parser("connect",
                          help="run a query against a served graph")
    conn.add_argument("endpoint",
                      help="a serve endpoint: 'host:port' or "
                           "'unix:/path'")
    conn.add_argument("kind", nargs="?",
                      choices=["reach", "out", "in", "neighborhood",
                               "degree", "path", "components",
                               "nodes", "edges", "rpq",
                               "pattern-count", "out-edges"])
    conn.add_argument("args", nargs="*",
                      help="node IDs (reach/path: two; out/in/"
                           "neighborhood/degree/out-edges: one); "
                           "rpq: PATTERN SRC DST; pattern-count: "
                           "SUBKIND plus its arguments")
    conn.add_argument("--info", action="store_true",
                      help="print the server's self-description "
                           "instead of querying")
    conn.add_argument("--codec", choices=["json", "binary"],
                      default="json",
                      help="wire codec (default: json)")

    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    graph, alphabet, _ = read_edge_list(args.input)
    settings = GRePairSettings(
        max_rank=args.max_rank,
        order=args.order,
        seed=args.seed,
        virtual_edges=not args.no_virtual_edges,
        prune=not args.no_prune,
        engine=args.engine,
    )
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if args.closure and args.shards <= 1:
        raise ReproError("--closure needs --shards > 1 (a single "
                         "grammar has no boundary to close)")
    if args.closure and any(len(edge.att) != 2
                            for _, edge in graph.edges()):
        # Fail before paying the compression: reach (and hence the
        # closure) is only defined on simple graphs.
        raise ReproError("--closure requires a simple graph "
                         "(rank-2 edges only); the input has a "
                         "hyperedge")
    save_kwargs = {"include_names": not args.no_names}
    if args.shards > 1:
        handle = ShardedCompressedGraph.compress(
            graph, alphabet, settings,
            shards=args.shards,
            partitioner=args.partitioner,
            parallel=args.parallel,
            validate=not args.no_validate,
        )
        if args.closure:
            save_kwargs["include_closure"] = True
    else:
        handle = CompressedGraph.compress(graph, alphabet, settings,
                                          validate=not args.no_validate)
    blob = handle.save(args.output, **save_kwargs)
    bpe = blob.bits_per_edge(max(1, graph.num_edges))
    print(f"{args.input}: |V|={graph.node_size} |E|={graph.num_edges}")
    print(f"grammar: {handle.summary()}")
    print(f"output:  {blob.total_bytes} bytes ({bpe:.2f} bpe) "
          f"-> {args.output}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    handle = open_compressed(args.input)
    graph = handle.decompress()
    write_edge_list(graph, handle.alphabet, args.output)
    print(f"{args.input}: {handle.summary()} -> "
          f"|V|={graph.node_size} |E|={graph.num_edges} "
          f"-> {args.output}")
    return 0


def _stats_timing(path: Path, cold_seconds: float) -> None:
    """The ``stats --timing`` tail: open times + materialization.

    The cold open is the one :func:`_cmd_stats` already paid (first
    decode in this process); the warm open repeats it with the page
    cache and mmap hot.  The materialization report replays the
    container's span decoder twice — a full open (every section
    copied, what a local handle pays) and a shard-0-only lazy open
    (what a :class:`~repro.serving.router.ShardHost` pays) — and
    prints the :attr:`DecodedContainer.materialized_sections`
    counters of each.
    """
    import time

    from repro.encoding.container import (
        decode_sharded_container,
        is_sharded_container,
        map_file,
    )

    start = time.perf_counter()
    open_compressed(path)
    warm_seconds = time.perf_counter() - start
    print(f"cold open:      {cold_seconds * 1e3:.2f} ms")
    print(f"warm open:      {warm_seconds * 1e3:.2f} ms")

    data = map_file(path)
    if not is_sharded_container(data):
        total = len(data)
        print(f"materialized:   {total}/{total} bytes (100.0%; "
              f"single-grammar containers decode eagerly)")
        return

    full = decode_sharded_container(data)
    full.meta
    for index in range(full.num_shards):
        full.shard(index)
    if full.has_closure:
        full.closure
    if full.has_rpq_closures:
        full.rpq_closures
    breakdown = ", ".join(f"{name}={size}" for name, size
                          in full.materialized_sections.items())
    print(f"materialized:   {full.materialized_bytes}/"
          f"{full.total_bytes} bytes "
          f"({full.materialized_bytes / full.total_bytes:.1%} "
          f"full open)")
    print(f"  sections:     {breakdown}")

    lazy = decode_sharded_container(data)
    lazy.shard(0)
    print(f"  shard 0 only: {lazy.materialized_bytes}/"
          f"{lazy.total_bytes} bytes "
          f"({lazy.materialized_bytes / lazy.total_bytes:.1%} "
          f"lazy open)")


def _cmd_stats(args: argparse.Namespace) -> int:
    import time

    start = time.perf_counter()
    handle = open_compressed(args.input)
    cold_seconds = time.perf_counter() - start
    sections = handle.sizes
    print(f"container:      {handle.total_bytes} bytes")
    if sections:
        breakdown = ", ".join(f"{name}={size}"
                              for name, size in sections.items())
        print(f"sections:       {breakdown}")
    if isinstance(handle, ShardedCompressedGraph):
        partition = handle.partition_stats
        print(f"shards:         {handle.num_shards}")
        print(f"partitioner:    {handle.stats['partitioner']}")
        print(f"boundary edges: {handle.boundary_edge_count}")
        print(f"cut ratio:      {partition['cut_ratio']:.3f}")
        print(f"shard balance:  {partition['balance']:.2f}")
        print(f"closure:        "
              f"{'persisted' if handle.closure_persisted else 'absent'}")
        for index, shard in enumerate(handle.shards):
            grammar = shard.grammar
            print(f"shard {index}:        {grammar.num_rules} rules, "
                  f"|G|={grammar.size}, "
                  f"{shard.node_count()} derived nodes")
    else:
        grammar = handle.grammar
        print(f"rules:          {grammar.num_rules}")
        print(f"grammar size:   |G| = {grammar.size}")
        print(f"grammar height: {grammar.height()}")
        print(f"start graph:    {grammar.start.node_size} nodes, "
              f"{grammar.start.num_edges} edges")
    print(f"derived graph:  {handle.node_count()} nodes, "
          f"{handle.edge_count()} edges")
    edges = max(1, handle.edge_count())
    print(f"bpe:            {8.0 * handle.total_bytes / edges:.2f}")
    cache = handle.cache_info
    print(f"query cache:    capacity={cache['capacity']} "
          f"hits={cache['hits']} misses={cache['misses']}")
    if args.timing:
        _stats_timing(args.input, cold_seconds)
    return 0


def _require_arity(kind: str, args: List[str], arity: int) -> None:
    if len(args) != arity:
        noun = "node ID" if arity == 1 else "node IDs"
        raise ReproError(f"{kind} needs exactly {arity} {noun}")


def _as_int(kind: str, value: str, what: str = "node ID") -> int:
    try:
        return int(value)
    except ValueError:
        raise ReproError(f"{kind} expects an integer {what}, "
                         f"got {value!r}")


def _run_query(ask: Callable[..., Any], kind: str,
               args: List[str]) -> int:
    """Evaluate and print one query through any query surface.

    ``ask(kind, *args)`` answers a single request — a local handle or
    a :class:`repro.serving.GraphClient` — so ``query`` (file) and
    ``connect`` (socket) print byte-identical output for the same
    graph.  Arguments arrive as strings (RPQ patterns and
    pattern-count label names are not integers); each branch converts
    its node IDs.
    """
    if kind == "reach":
        _require_arity(kind, args, 2)
        source, target = (_as_int(kind, arg) for arg in args)
        answer = ask("reach", source, target)
        print(f"reach({source}, {target}) = {answer}")
        return 0 if answer else 1
    if kind == "rpq":
        if len(args) != 3:
            raise ReproError("rpq needs a pattern and two node IDs, "
                             "e.g. rpq 'a(b|c)*' 4 17")
        pattern = args[0]
        source = _as_int(kind, args[1])
        target = _as_int(kind, args[2])
        answer = ask("rpq", pattern, source, target)
        print(f"rpq({pattern!r}, {source}, {target}) = {answer}")
        return 0 if answer else 1
    if kind == "pattern-count":
        if not args:
            raise ReproError(
                "pattern-count needs a sub-kind (label / digram / "
                "star / node_out / node_in) plus its arguments")
        sub_kind = args[0].replace("-", "_")
        rest: List[Any] = list(args[1:])
        if sub_kind == "star" and len(rest) == 2:
            rest[1] = _as_int(kind, rest[1], "star threshold")
        elif sub_kind in ("node_out", "node_in") and len(rest) == 2:
            rest[1] = _as_int(kind, rest[1])
        print(ask("pattern_count", sub_kind, *rest))
        return 0
    if kind == "out-edges":
        _require_arity(kind, args, 1)
        for label, target in ask("out_edges", _as_int(kind, args[0])):
            print(f"{label} {target}")
        return 0
    if kind == "path":
        _require_arity(kind, args, 2)
        path = ask("path", *(_as_int(kind, arg) for arg in args))
        if path is None:
            print("none")
            return 1
        print(" ".join(map(str, path)))
        return 0
    if kind in ("out", "in", "neighborhood"):
        _require_arity(kind, args, 1)
        print(" ".join(map(str, ask(kind, _as_int(kind, args[0])))))
        return 0
    if kind == "degree":
        if not args:
            # Extrema count every edge (true degrees, one grammar pass).
            extrema = ask("degree")
            for name in ("max_out", "min_out", "max_in", "min_in",
                         "max", "min"):
                print(f"{name}: {extrema[name]}")
            return 0
        _require_arity(kind, args, 1)
        node = _as_int(kind, args[0])
        print(f"out={ask('degree', node, 'out')} "
              f"in={ask('degree', node, 'in')} (distinct neighbors)")
        return 0
    if kind == "components":
        print(ask("components"))
        return 0
    if kind == "nodes":
        print(ask("nodes"))
        return 0
    print(ask("edges"))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    handle = open_compressed(args.input)

    def ask(kind: str, *query_args: Any) -> Any:
        return handle.execute([(kind, *query_args)])[0].unwrap()

    return _run_query(ask, args.kind, args.args)


def _serve_until_signalled(server: Any, banner: str,
                           ready_file: Optional[Path]) -> int:
    import signal

    # SIGTERM must tear the shard processes down like Ctrl-C does.
    def _terminate(*_: Any) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    try:
        print(banner, flush=True)
        if ready_file is not None:
            ready_file.write_text(server.endpoint + "\n")
        try:
            while True:
                signal.pause()
        except (KeyboardInterrupt, SystemExit):
            pass
        return 0
    finally:
        server.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import DEFAULT_SHARD_TIMEOUT, serve

    if args.input is None and args.manifest is None:
        raise ReproError("serve needs a container path or --manifest")
    timeout = (DEFAULT_SHARD_TIMEOUT if args.shard_timeout is None
               else args.shard_timeout)
    server = serve(args.input, address=args.address, codec=args.codec,
                   cache_size=args.cache_size, pipeline=args.pipeline,
                   replicas=args.replicas, manifest=args.manifest,
                   shard_timeout=timeout)
    what = args.input if args.input is not None else args.manifest
    banner = (f"serving {what} ({server.num_shards} shard"
              f"{'s' if server.num_shards != 1 else ''}) "
              f"at {server.endpoint}")
    return _serve_until_signalled(server, banner, args.ready_file)


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    from repro.serving import ShardHost

    host = ShardHost(args.input, shard=args.shard,
                     address=args.address, codec=args.codec,
                     epoch=args.epoch, cache_size=args.cache_size,
                     pipeline=args.pipeline)
    host.start()
    banner = (f"serving shard {args.shard} of {args.input} "
              f"(epoch {args.epoch}) at {host.endpoint}")
    return _serve_until_signalled(host, banner, args.ready_file)


def _cmd_manifest(args: argparse.Namespace) -> int:
    from repro.encoding.container import (
        decode_sharded_container,
        is_sharded_container,
    )
    from repro.serving import ClusterManifest

    data = args.input.read_bytes()
    shards = tuple(
        tuple(part for part in group.split(",") if part)
        for group in args.endpoints
    )
    if any(not group for group in shards):
        raise ReproError("every shard needs at least one endpoint")
    if is_sharded_container(data):
        num_shards = decode_sharded_container(data).num_shards
    else:
        num_shards = 1
    if len(shards) != num_shards:
        raise ReproError(
            f"{args.input} holds {num_shards} shard"
            f"{'s' if num_shards != 1 else ''} but --endpoints "
            f"names {len(shards)} group"
            f"{'s' if len(shards) != 1 else ''}")
    manifest = ClusterManifest.for_container(
        data, shards, epoch=args.epoch, codec=args.codec,
        container=args.input)
    manifest.save(args.output)
    print(f"wrote {args.output}: {len(shards)} shard"
          f"{'s' if len(shards) != 1 else ''}, "
          f"epoch {args.epoch}")
    return 0


def _cmd_connect(args: argparse.Namespace) -> int:
    from repro.serving import connect
    with connect(args.endpoint, codec=args.codec) as client:
        if args.info:
            for key, value in sorted(client.info().items()):
                print(f"{key}: {value}")
            return 0
        if args.kind is None:
            raise ReproError("connect needs a query kind "
                             "(or --info)")
        return _run_query(client.query, args.kind, args.args)


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "shard-serve": _cmd_shard_serve,
    "manifest": _cmd_manifest,
    "connect": _cmd_connect,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Library errors (every :class:`ReproError` subclass) and I/O
    failures print ``error: ...`` to stderr and exit with code 2,
    uniformly across subcommands.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
