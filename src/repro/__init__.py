"""repro — grammar-based graph compression (gRePair).

A faithful, self-contained reproduction of

    Sebastian Maneth and Fabian Peternek,
    "Compressing Graphs by Grammars", ICDE 2016.

Public API highlights
---------------------
``CompressedGraph``
    The serving-grade front door: one long-lived handle unifying
    compress (``CompressedGraph.compress`` / ``.from_stream``),
    persistence (``.save`` / ``.open`` / ``.to_bytes`` /
    ``.from_bytes``), derivation (``.decompress``) and the full
    section-V query family (``reach``, ``out``, ``in_``,
    ``neighborhood``, ``components``, ``degree``, ``path``, plus
    ``batch`` for serving loops — ``batch(..., parallel=True)`` plans
    and fans a batch out) over one lazily built, cached, thread-safe
    index, fronted by a per-handle query-result LRU
    (``handle.cache_info``).
``ShardedCompressedGraph``
    The same interface over ``k`` per-shard grammars for graphs too
    large for one compression run: pluggable partitioners (``hash``,
    ``connectivity``, and the edge-cut minimizing ``bfs`` / ``label``
    from :mod:`repro.partition`), shard builds fanned out over
    threads or forked processes (``parallel="thread"|"process"``),
    per-node queries routed to the owning shard, cross-shard ``reach``
    planned per query (boundary transitive closure / batched chaining
    / merged BFS, chosen by a cost model) and a multi-shard container
    format that persists a warmed closure (``open_compressed``
    dispatches on the file magic).
``repro.serving`` (``serve`` / ``connect`` / the executors)
    The typed query protocol: ``QueryRequest``/``QueryResult`` with
    per-request errors (``handle.execute(...)``), pluggable executors
    (``InlineExecutor``, ``ThreadExecutor``, ``ProcessExecutor``,
    ``SocketExecutor``), and the socket deployment — ``serve()`` runs
    one process per shard behind a router speaking a framed
    JSON-or-binary wire codec; ``connect()`` is the client.
``repro.rpq`` (``compile_pattern`` / ``PatternDFA``)
    Regular path queries over the compressed form: a regex over edge
    labels compiles to a canonical minimized DFA, evaluated via
    memoized product skeletons (``handle.rpq(pattern, s, t)``),
    with grammar-level pattern counting (``handle.pattern_count``)
    riding the same pass family.  Sharded handles plan each RPQ
    (per-pattern boundary closure / chaining / BFS) and persist
    warmed closures in the container.
``Hypergraph`` / ``Alphabet``
    The directed edge-labeled hypergraph data model.
``GRePairSettings`` / ``CompressionResult``
    Algorithm parameters (validated eagerly) and per-run statistics.
    ``GRePairSettings(engine=...)`` selects the occurrence-maintenance
    engine: ``"incremental"`` (default; no re-count passes) or
    ``"recount"`` (legacy full-recount oracle).

Compatibility shims (predating the facade, delegating to it)
------------------------------------------------------------
``compress``
    Run the compressor and return only the ``CompressionResult``.
``GrammarQueries``
    Per-grammar query object; each construction canonicalizes anew —
    the facade's cached index supersedes it.
``derive`` / ``StreamingCompressor`` / ``encode_grammar`` /
``decode_grammar``
    The underlying building blocks, still exported for direct use.

See ``examples/quickstart.py`` for a tour.
"""

from repro.api import CompressedGraph
from repro.rpq import PatternDFA, compile_pattern
from repro.sharding import ShardedCompressedGraph, open_compressed
from repro.serving import (
    GraphClient,
    GraphServer,
    InlineExecutor,
    ProcessExecutor,
    QueryKind,
    QueryRequest,
    QueryResult,
    SocketExecutor,
    ThreadExecutor,
    connect,
    serve,
)
from repro.core import (
    ENGINES,
    Alphabet,
    CompressionResult,
    CompressionStats,
    Edge,
    GRePair,
    GRePairSettings,
    Hypergraph,
    Rule,
    SLHRGrammar,
    StreamingCompressor,
    compress,
    derive,
    fp_equivalence_classes,
    node_order,
)

__version__ = "1.5.0"

__all__ = [
    "Alphabet",
    "CompressedGraph",
    "CompressionResult",
    "CompressionStats",
    "ENGINES",
    "Edge",
    "GRePair",
    "GRePairSettings",
    "GraphClient",
    "GraphServer",
    "Hypergraph",
    "InlineExecutor",
    "PatternDFA",
    "ProcessExecutor",
    "QueryKind",
    "QueryRequest",
    "QueryResult",
    "Rule",
    "SLHRGrammar",
    "ShardedCompressedGraph",
    "SocketExecutor",
    "StreamingCompressor",
    "ThreadExecutor",
    "compile_pattern",
    "compress",
    "connect",
    "derive",
    "fp_equivalence_classes",
    "node_order",
    "open_compressed",
    "serve",
    "__version__",
]
