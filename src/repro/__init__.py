"""repro — grammar-based graph compression (gRePair).

A faithful, self-contained reproduction of

    Sebastian Maneth and Fabian Peternek,
    "Compressing Graphs by Grammars", ICDE 2016.

Public API highlights
---------------------
``Hypergraph`` / ``Alphabet``
    The directed edge-labeled hypergraph data model.
``compress`` / ``GRePairSettings`` / ``CompressionResult``
    Run the gRePair compressor and inspect the resulting SL-HR grammar.
    ``GRePairSettings(engine=...)`` selects the occurrence-maintenance
    engine: ``"incremental"`` (default; no re-count passes) or
    ``"recount"`` (legacy full-recount oracle).
``StreamingCompressor``
    Chunked compression that reuses the incremental engine's state
    across chunks.
``derive``
    Expand a grammar back into its (deterministically numbered) graph.
``encode_grammar`` / ``decode_grammar``
    The binary format: k2-tree start graph + delta-coded rules.
``GrammarQueries``
    Neighborhood, reachability and component queries evaluated directly
    on the grammar (paper section V).

See ``examples/quickstart.py`` for a tour.
"""

from repro.core import (
    ENGINES,
    Alphabet,
    CompressionResult,
    CompressionStats,
    Edge,
    GRePair,
    GRePairSettings,
    Hypergraph,
    Rule,
    SLHRGrammar,
    StreamingCompressor,
    compress,
    derive,
    fp_equivalence_classes,
    node_order,
)

__version__ = "1.1.0"

__all__ = [
    "Alphabet",
    "CompressionResult",
    "CompressionStats",
    "ENGINES",
    "Edge",
    "GRePair",
    "GRePairSettings",
    "Hypergraph",
    "Rule",
    "SLHRGrammar",
    "StreamingCompressor",
    "compress",
    "derive",
    "fp_equivalence_classes",
    "node_order",
    "__version__",
]
