"""The serving-grade front door: :class:`CompressedGraph`.

The paper's central claim (conf_icde_ManethP16, gRePair) is that the
grammar is not just a smaller file but a *queryable* representation.
This module packages that claim as one long-lived handle — the way
production stores expose a single ``DB``/``Reader`` object instead of a
bag of free functions:

* **compress** — :meth:`CompressedGraph.compress` runs the gRePair
  pipeline; :meth:`CompressedGraph.from_stream` wraps the chunked
  :class:`repro.core.streaming.StreamingCompressor`.
* **persist** — :meth:`CompressedGraph.save` / :meth:`~CompressedGraph.to_bytes`
  write the paper's binary container; :meth:`CompressedGraph.open` /
  :meth:`~CompressedGraph.from_bytes` load one back.  :attr:`sizes`
  reports per-section byte accounting either way.
* **derive** — :meth:`CompressedGraph.decompress` expands ``val(G)``
  with the deterministic node numbering the queries use.
* **query** — the full section-V family (``reach``, ``out``, ``in_``,
  ``neighborhood``, ``components``, ``degree``, ``path``) plus the
  legacy ``GrammarQueries`` spellings, evaluated against one lazily
  built, cached, **thread-safe** index: the grammar is canonicalized at
  most once per handle lifetime (guarded by a lock), no matter how many
  queries run or from how many threads.
* **serve** — the handle is a :class:`repro.serving.GraphService`:
  :meth:`execute` takes typed :class:`~repro.serving.QueryRequest`
  batches and returns per-request
  :class:`~repro.serving.QueryResult` answers (one bad request errors
  alone instead of aborting the batch) behind a pluggable
  :class:`~repro.serving.Executor` — inline, thread pool, forked
  process pool, or a socket round-trip to :func:`repro.serving.serve`.
  :meth:`batch` stays the legacy thin adapter over the same machinery:
  plain values, request order, first error raised;
  ``batch(..., parallel=True)`` plans the batch first (deduplicates
  repeated requests, pre-filters the LRU and fans the unique misses
  out across a thread pool).
* **cache** — every per-node/per-pair query consults a per-handle LRU
  (:class:`repro.queries.cache.QueryCache`) keyed by the same query
  tuples ``batch()`` uses; :attr:`cache_info` exposes ``hits`` /
  ``misses`` counters next to :attr:`canonicalizations`.

For graphs too large for one grammar, the same interface is served by
:class:`repro.sharding.ShardedCompressedGraph`, which partitions the
input across per-shard ``CompressedGraph`` handles and routes/merges
queries.

The older entry points (:func:`repro.core.pipeline.compress`,
:class:`repro.queries.GrammarQueries`, :func:`repro.core.derive`)
remain as compatibility shims delegating to this facade.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.alphabet import Alphabet
from repro.core.derivation import derive as _derive
from repro.core.grammar import SLHRGrammar
from repro.core.hypergraph import Hypergraph
from repro.core.pipeline import CompressionResult, GRePairSettings
from repro.core.repair import CompressionStats, GRePair
from repro.core.streaming import StreamingCompressor
from repro.encoding.container import (
    GrammarFile,
    container_sections,
    decode_grammar,
    encode_grammar,
    map_file,
)
from repro.exceptions import GrammarError, QueryError
from repro.queries.cache import QueryCache
from repro.queries.components import ComponentQueries
from repro.queries.degrees import DegreeQueries
from repro.queries.index import GrammarIndex
from repro.queries.neighborhood import NeighborhoodQueries
from repro.queries.reachability import ReachabilityQueries
from repro.rpq.counts import PatternCounts
from repro.rpq.engine import PatternEngine
from repro.rpq.regex import cache_key as _rpq_cache_key
from repro.serving.executors import Executor, InlineExecutor, ThreadExecutor
from repro.serving.protocol import (
    KIND_ALIASES,
    KIND_METHODS,
    GraphService,
    QueryKind,
)
from repro.util.varint import read_uvarint

__all__ = ["CompressedGraph", "DEFAULT_CACHE_SIZE"]

#: Default per-handle query-result LRU capacity (``cache_size=0``
#: disables caching for a handle).
DEFAULT_CACHE_SIZE = 1024


class _QueryBundle:
    """Everything the query family shares: one canonical grammar + index.

    Built exactly once per handle (under the handle's lock).  The
    sub-evaluators that need their own precomputation pass
    (reachability skeletons, component summaries, degree summaries) are
    attached lazily, also under the lock; after construction every
    query is a pure read over immutable state, so concurrent use needs
    no further synchronization.
    """

    __slots__ = ("grammar", "index", "neighborhood", "reachability",
                 "degrees", "component_count", "edge_count",
                 "rpq_engine", "pattern_counts")

    def __init__(self, canonical: SLHRGrammar) -> None:
        self.grammar = canonical
        self.index = GrammarIndex(canonical)
        self.neighborhood = NeighborhoodQueries(self.index)
        self.reachability: Optional[ReachabilityQueries] = None
        self.degrees: Optional[DegreeQueries] = None
        self.component_count: Optional[int] = None
        self.edge_count: Optional[int] = None
        self.rpq_engine: Optional[PatternEngine] = None
        self.pattern_counts: Optional[PatternCounts] = None


class CompressedGraph(GraphService):
    """One grammar-compressed graph: compress, persist, derive, query.

    Construct through the classmethods — :meth:`compress`,
    :meth:`open`, :meth:`from_bytes`, :meth:`from_stream`,
    :meth:`from_grammar` — not directly.  The handle is immutable and
    safe to share between threads: the query index is built at most
    once (double-checked under an internal lock), and
    :attr:`canonicalizations` records how many canonicalization passes
    the handle has performed (0 before the first query, 1 ever after —
    the regression gate in ``scripts/check_bench_regression.py`` holds
    this at "no more than one per lifetime").
    """

    def __init__(self, grammar: SLHRGrammar, *,
                 result: Optional[CompressionResult] = None,
                 container: Optional[GrammarFile] = None,
                 container_key: Optional[Tuple[bool, int]] = None,
                 stream_stats: Optional[CompressionStats] = None,
                 cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._grammar = grammar
        self._result = result
        self._container = container
        self._container_key = container_key
        self._stream_stats = stream_stats
        self._canonical: Optional[SLHRGrammar] = None
        self._bundle: Optional[_QueryBundle] = None
        self._lock = threading.RLock()
        #: Canonicalization passes performed by this handle (<= 1).
        self.canonicalizations = 0
        #: Per-handle query-result LRU (see :mod:`repro.queries.cache`).
        self._cache = QueryCache(cache_size)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def compress(cls, graph: Hypergraph, alphabet: Alphabet,
                 settings: Optional[GRePairSettings] = None,
                 validate: bool = True,
                 cache_size: int = DEFAULT_CACHE_SIZE
                 ) -> "CompressedGraph":
        """Compress ``graph`` with gRePair and return the handle.

        The input graph and alphabet are left untouched: compression
        works on copies.  ``settings`` defaults to the paper's
        recommendation (``maxRank=4``, FP order, incremental engine);
        ``validate=False`` skips the post-run grammar validity check
        (cheap; disable only in tight benchmark loops).  ``cache_size``
        caps the handle's query-result LRU (0 disables it).
        """
        if settings is None:
            settings = GRePairSettings()
        original_size = graph.total_size
        original_edges = graph.num_edges
        algorithm = GRePair(
            graph.copy(),
            alphabet.copy(),
            max_rank=settings.max_rank,
            order=settings.order,
            seed=settings.seed,
            virtual_edges=settings.virtual_edges,
            prune=settings.prune,
            engine=settings.engine,
        )
        grammar = algorithm.run()
        if validate:
            grammar.validate()
        result = CompressionResult(
            grammar=grammar,
            original_size=original_size,
            original_edges=original_edges,
            settings=settings,
            stats=algorithm.stats.as_dict(),
            stats_obj=algorithm.stats,
        )
        return cls(grammar, result=result, cache_size=cache_size)

    @classmethod
    def from_stream(
        cls,
        chunks: Iterable[Iterable[Tuple[int, Sequence[int]]]],
        alphabet: Alphabet,
        settings: Optional[GRePairSettings] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "CompressedGraph":
        """Compress an edge stream chunk by chunk.

        ``chunks`` yields iterables of ``(label, attachment)`` pairs;
        each chunk is ingested and drained before the next (see
        :class:`repro.core.streaming.StreamingCompressor`).  Streaming
        requires the incremental engine — ``settings.engine`` must be
        left at its default.
        """
        if settings is None:
            settings = GRePairSettings()
        if settings.engine != "incremental":
            raise GrammarError(
                "streaming compression requires engine='incremental', "
                f"got {settings.engine!r}"
            )
        compressor = StreamingCompressor(
            alphabet,
            max_rank=settings.max_rank,
            order=settings.order,
            seed=settings.seed,
            virtual_edges=settings.virtual_edges,
            prune=settings.prune,
        )
        for chunk in chunks:
            compressor.add_edges(chunk)
        grammar = compressor.finish()
        return cls(grammar, stream_stats=compressor.stats,
                   cache_size=cache_size)

    @classmethod
    def from_grammar(cls, grammar: SLHRGrammar,
                     cache_size: int = DEFAULT_CACHE_SIZE
                     ) -> "CompressedGraph":
        """Wrap an existing grammar (no copy is taken)."""
        return cls(grammar, cache_size=cache_size)

    @classmethod
    def from_bytes(cls, buf: Union[bytes, bytearray, memoryview,
                                   GrammarFile],
                   cache_size: int = DEFAULT_CACHE_SIZE
                   ) -> "CompressedGraph":
        """Load a handle from serialized container bytes."""
        if isinstance(buf, GrammarFile):
            data = buf.data
        elif isinstance(buf, bytearray):
            data = bytes(buf)  # defend against caller mutation
        else:
            data = buf
        grammar = decode_grammar(data)
        container = GrammarFile(data=data,
                                section_bytes=container_sections(data))
        # The header records the k2-tree arity; remembering it lets
        # to_bytes()/save() reuse the loaded bytes only when the
        # requested parameters actually match the file's encoding.
        k, _ = read_uvarint(data, 5)
        return cls(grammar, container=container,
                   container_key=(True, k), cache_size=cache_size)

    @classmethod
    def open(cls, path: Union[str, Path],
             cache_size: int = DEFAULT_CACHE_SIZE) -> "CompressedGraph":
        """Load a handle from a ``.grpr`` container file (mmap-backed)."""
        return cls.from_bytes(map_file(path), cache_size=cache_size)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _ensure_container(self, include_names: bool = True,
                          k: int = 2) -> GrammarFile:
        key = (include_names, k)
        with self._lock:
            if self._container is not None and self._container_key == key:
                return self._container
            container = encode_grammar(self._grammar, k=k,
                                       include_names=include_names)
            self._container = container
            self._container_key = key
            return container

    def to_bytes(self, include_names: bool = True, k: int = 2) -> bytes:
        """Serialize to the paper's binary container format."""
        data = self._ensure_container(include_names, k).data
        return data if isinstance(data, bytes) else bytes(data)

    def save(self, path: Union[str, Path], include_names: bool = True,
             k: int = 2) -> GrammarFile:
        """Write the container to ``path``; returns the container."""
        container = self._ensure_container(include_names, k)
        container.write(path)
        return container

    def _current_container(self) -> GrammarFile:
        """The existing container if any, else a default encoding."""
        with self._lock:
            container = self._container
        if container is not None:
            return container
        return self._ensure_container()

    @property
    def sizes(self) -> Dict[str, int]:
        """Per-section byte accounting of the serialized container.

        Encodes lazily for in-memory handles; opened handles report the
        sections parsed from the loaded file.
        """
        return dict(self._current_container().section_bytes)

    @property
    def total_bytes(self) -> int:
        """Size of the serialized container in bytes."""
        return self._current_container().total_bytes

    def bits_per_edge(self, num_edges: Optional[int] = None) -> float:
        """bpe of the serialized container (the paper's size metric).

        ``num_edges`` defaults to the derived terminal edge count;
        benchmarks pass the original graph's edge count explicitly.
        """
        if num_edges is None:
            num_edges = self.edge_count()
        return self._current_container().bits_per_edge(num_edges)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def grammar(self) -> SLHRGrammar:
        """The underlying SL-HR grammar (as produced or decoded)."""
        return self._grammar

    @property
    def alphabet(self) -> Alphabet:
        """The grammar's alphabet (terminals + minted nonterminals)."""
        return self._grammar.alphabet

    @property
    def canonical_grammar(self) -> SLHRGrammar:
        """The canonical grammar (lazy; shared with the query index).

        Accessing this does *not* build the query index — derivation
        only needs the canonical numbering.
        """
        canonical = self._canonical
        if canonical is None:
            with self._lock:
                canonical = self._canonical
                if canonical is None:
                    canonical = self._grammar.canonicalize()
                    self.canonicalizations += 1
                    self._canonical = canonical
        return canonical

    @property
    def index(self) -> GrammarIndex:
        """The node-ID index (forces the lazy build)."""
        return self._queries().index

    @property
    def result(self) -> Optional[CompressionResult]:
        """The :class:`CompressionResult` when compressed in-process."""
        return self._result

    @property
    def stats(self) -> Dict[str, object]:
        """Compression statistics, ``{}`` for opened handles."""
        if self._result is not None:
            return dict(self._result.stats)
        if self._stream_stats is not None:
            return self._stream_stats.as_dict()
        return {}

    def summary(self) -> str:
        """One-line description of the handle."""
        if self._result is not None:
            return self._result.summary()
        return (f"{self._grammar.num_rules} rules, "
                f"|G|={self._grammar.size}, "
                f"{self.node_count()} derived nodes")

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def decompress(self, max_edges: Optional[int] = None) -> Hypergraph:
        """Expand ``val(G)`` with the query numbering.

        The derived graph uses the canonical deterministic node IDs, so
        its nodes are exactly the IDs the query family answers with.
        """
        return _derive(self.canonical_grammar, max_edges=max_edges)

    # ------------------------------------------------------------------
    # The lazy, cached, thread-safe query index
    # ------------------------------------------------------------------
    def _queries(self) -> _QueryBundle:
        bundle = self._bundle
        if bundle is None:
            with self._lock:
                bundle = self._bundle
                if bundle is None:
                    bundle = _QueryBundle(self.canonical_grammar)
                    self._bundle = bundle
        return bundle

    @property
    def index_built(self) -> bool:
        """Whether the lazy query index exists yet (no side effects)."""
        return self._bundle is not None

    def _reachability(self) -> ReachabilityQueries:
        bundle = self._queries()
        if bundle.reachability is None:
            with self._lock:
                if bundle.reachability is None:
                    bundle.reachability = ReachabilityQueries(bundle.index)
        return bundle.reachability

    def _degrees(self) -> DegreeQueries:
        bundle = self._queries()
        if bundle.degrees is None:
            with self._lock:
                if bundle.degrees is None:
                    bundle.degrees = DegreeQueries(bundle.grammar)
        return bundle.degrees

    def _rpq_engine(self) -> PatternEngine:
        bundle = self._queries()
        if bundle.rpq_engine is None:
            with self._lock:
                if bundle.rpq_engine is None:
                    bundle.rpq_engine = PatternEngine(
                        bundle.index, bundle.grammar.alphabet,
                        bundle.neighborhood)
        return bundle.rpq_engine

    def _pattern_counts(self) -> PatternCounts:
        bundle = self._queries()
        if bundle.pattern_counts is None:
            with self._lock:
                if bundle.pattern_counts is None:
                    bundle.pattern_counts = PatternCounts(
                        bundle.index, bundle.grammar.alphabet)
        return bundle.pattern_counts

    # -- neighborhood ---------------------------------------------------
    def out_neighbors(self, node_id: int) -> List[int]:
        """Sorted out-neighbor IDs of ``node_id`` (paper's ``N+``)."""
        return self._cache.get_or_compute(
            ("out", node_id),
            lambda: self._queries().neighborhood.out_neighbors(node_id))

    def in_neighbors(self, node_id: int) -> List[int]:
        """Sorted in-neighbor IDs of ``node_id`` (paper's ``N-``)."""
        return self._cache.get_or_compute(
            ("in", node_id),
            lambda: self._queries().neighborhood.in_neighbors(node_id))

    def neighbors(self, node_id: int) -> List[int]:
        """Sorted undirected neighborhood ``N(v)``."""
        return self._cache.get_or_compute(
            ("neighborhood", node_id),
            lambda: self._queries().neighborhood.neighbors(node_id))

    # Short serving-style spellings.
    def out(self, node_id: int) -> List[int]:
        """Alias of :meth:`out_neighbors`."""
        return self.out_neighbors(node_id)

    def in_(self, node_id: int) -> List[int]:
        """Alias of :meth:`in_neighbors` (``in`` is a keyword)."""
        return self.in_neighbors(node_id)

    def neighborhood(self, node_id: int) -> List[int]:
        """Alias of :meth:`neighbors`."""
        return self.neighbors(node_id)

    # -- speed-up queries -----------------------------------------------
    def reachable(self, source_id: int, target_id: int) -> bool:
        """(s,t)-reachability in ``O(|G|)`` (Theorem 6)."""
        return self._cache.get_or_compute(
            ("reach", source_id, target_id),
            lambda: self._reachability().reachable(source_id, target_id))

    def reach(self, source_id: int, target_id: int) -> bool:
        """Alias of :meth:`reachable`."""
        return self.reachable(source_id, target_id)

    def connected_components(self) -> int:
        """Number of connected components of ``val(G)`` (one pass)."""
        bundle = self._queries()
        if bundle.component_count is None:
            with self._lock:
                if bundle.component_count is None:
                    bundle.component_count = ComponentQueries(
                        bundle.grammar).connected_components()
        return bundle.component_count

    def components(self) -> int:
        """Alias of :meth:`connected_components`."""
        return self.connected_components()

    def degrees(self) -> DegreeQueries:
        """The degree-extrema evaluator (CMSO function, one pass)."""
        return self._degrees()

    def degree(self, node_id: Optional[int] = None,
               direction: str = "out") -> Union[int, Dict[str, int]]:
        """Degree information without decompressing.

        With ``node_id``: the number of distinct ``out``/``in``/``any``
        neighbors of that node.  Without: the true degree extrema of
        ``val(G)`` (edge multiplicities included) as a dict with keys
        ``max_out``/``min_out``/``max_in``/``min_in``/``max``/``min``.
        """
        if node_id is None:
            extrema = self._degrees()
            return {
                "max_out": extrema.max_out_degree(),
                "min_out": extrema.min_out_degree(),
                "max_in": extrema.max_in_degree(),
                "min_in": extrema.min_in_degree(),
                "max": extrema.max_degree(),
                "min": extrema.min_degree(),
            }
        if direction == "out":
            return len(self.out_neighbors(node_id))
        if direction == "in":
            return len(self.in_neighbors(node_id))
        if direction == "any":
            return len(self.neighbors(node_id))
        raise QueryError(f"unknown direction {direction!r}; "
                         "expected 'out', 'in' or 'any'")

    def path(self, source_id: int, target_id: int
             ) -> Optional[List[int]]:
        """A shortest directed path as node IDs, or ``None``."""
        from repro.queries.traversal import shortest_path
        return self._cache.get_or_compute(
            ("path", source_id, target_id),
            lambda: shortest_path(self, source_id, target_id))

    # -- regular path queries / pattern counts --------------------------
    @staticmethod
    def _rpq_key(pattern: str, source: int, target: int,
                 from_state: Optional[int],
                 to_state: Optional[int]) -> Tuple[Any, ...]:
        """The LRU key an RPQ shares with the typed protocol.

        Matches ``QueryRequest.key``: the pattern text is replaced by
        its minimized-DFA canonical form, so equivalent spellings
        (``a|b`` / ``b|a``) share one entry; the optional state
        overrides trail in wire order.
        """
        states: Tuple[Any, ...] = ()
        if to_state is not None:
            states = (from_state, to_state)
        elif from_state is not None:
            states = (from_state,)
        return ("rpq", _rpq_cache_key(pattern), source, target, *states)

    def rpq(self, pattern: str, source: int, target: int,
            from_state: Optional[int] = None,
            to_state: Optional[int] = None) -> bool:
        """Does some ``source -> target`` path spell a word of ``pattern``?

        ``pattern`` is a regex over edge-label names (literals, ``.``,
        concatenation, ``|``, ``*``, ``+``, ``?``, parentheses — see
        :mod:`repro.rpq.regex`).  Evaluation runs on a per-handle
        memoized product-skeleton build (one per *canonical* DFA), with
        a cost-gated product-automaton BFS fallback for automata large
        relative to the grammar.

        ``from_state`` / ``to_state`` override the DFA's start and
        accepting states (states use the canonical DFA's numbering) —
        the probe surface the sharded evaluator batches.
        """
        return self._cache.get_or_compute(
            self._rpq_key(pattern, source, target, from_state, to_state),
            lambda: self._rpq_engine().matches(
                pattern, source, target, from_state, to_state))

    def pattern_count(self, sub_kind: str, *args: Any) -> int:
        """GraphZip-style labeled pattern counts over ``val(G)``.

        ``("label", a)`` counts ``a``-edges; ``("digram", a, b)``
        counts length-2 label paths; ``("star", a, k)`` counts nodes
        with ``>= k`` outgoing ``a``-edges; ``("node_out", a, v)`` /
        ``("node_in", a, v)`` are one node's labeled degrees with
        multiplicity.  Labels are *names*; unknown names count zero.
        """
        return self._cache.get_or_compute(
            ("pattern_count", sub_kind, *args),
            lambda: self._pattern_counts().count(sub_kind, *args))

    def out_edges(self, node_id: int) -> List[List[int]]:
        """Labeled outgoing edges as sorted ``[label, target]`` pairs.

        The labeled variant of :meth:`out_neighbors` (list-of-lists for
        wire type-stability across the serving codecs).
        """
        return self._cache.get_or_compute(
            ("out_edges", node_id),
            lambda: [list(pair) for pair in
                     self._queries().neighborhood.out_edges(node_id)])

    @property
    def rpq_info(self) -> Dict[str, int]:
        """RPQ engine accounting: skeleton builds, cached DFAs, entries."""
        return self._rpq_engine().info()

    def node_count(self) -> int:
        """``|val(G)|_V`` without decompressing."""
        return self._queries().index.total_nodes

    def edge_count(self) -> int:
        """Terminal edge count of ``val(G)`` without decompressing."""
        bundle = self._queries()
        if bundle.edge_count is None:
            bundle.edge_count = bundle.grammar.derived_edge_count()
        return bundle.edge_count

    # ------------------------------------------------------------------
    # Batched evaluation for serving workloads
    # ------------------------------------------------------------------
    #: Legacy spelling -> method map (kept for introspection; the
    #: typed protocol in :mod:`repro.serving.protocol` is canonical).
    _BATCH_KINDS = {alias: KIND_METHODS[kind]
                    for alias, kind in KIND_ALIASES.items()}

    def _uncached_query(self, kind: QueryKind,
                        args: Tuple[Any, ...]) -> Any:
        """Evaluate one typed request *bypassing* the result LRU.

        The planned executors pre-filter the cache and bulk-insert
        the misses afterwards; consulting the LRU again per job would
        double-count every lookup.  Non-cacheable kinds route through
        their public methods (their memoization lives on the bundle,
        not the LRU).
        """
        if kind is QueryKind.OUT:
            return self._queries().neighborhood.out_neighbors(*args)
        if kind is QueryKind.IN:
            return self._queries().neighborhood.in_neighbors(*args)
        if kind is QueryKind.NEIGHBORHOOD:
            return self._queries().neighborhood.neighbors(*args)
        if kind is QueryKind.REACH:
            return self._reachability().reachable(*args)
        if kind is QueryKind.PATH:
            from repro.queries.traversal import shortest_path
            return shortest_path(self, *args)
        if kind is QueryKind.RPQ:
            return self._rpq_engine().matches(*args)
        if kind is QueryKind.PATTERN_COUNT:
            return self._pattern_counts().count(*args)
        if kind is QueryKind.OUT_EDGES:
            return [list(pair) for pair in
                    self._queries().neighborhood.out_edges(*args)]
        return getattr(self, KIND_METHODS[kind])(*args)

    def warm(self) -> "CompressedGraph":
        """Force every lazy structure now (index, evaluators, counts).

        Serving paths call this before forking workers or accepting
        traffic, so the one canonicalization pass and the per-family
        precomputations happen once, in the parent, instead of once
        per worker.  Query-level errors (e.g. degree extrema on a
        non-simple graph) stay lazy — they belong to the queries that
        trigger them.
        """
        self._queries()
        self._reachability()
        self.edge_count()
        for build in (self._degrees, self.connected_components):
            try:
                build()
            except QueryError:
                pass
        return self

    def batch(self, requests: Iterable[Sequence[Any]],
              parallel: bool = False,
              max_workers: Optional[int] = None,
              executor: Optional[Executor] = None) -> List[Any]:
        """Evaluate many queries against one index build.

        Each request is a ``(kind, *args)`` sequence, e.g.
        ``("reach", 1, 9)``, ``("out", 4)``, ``("components",)``,
        ``("degree", 4, "in")`` or ``("path", 1, 7)``.  Results come
        back in request order.  The index (and every shared
        precomputation a request needs) is built once for the whole
        batch, which is the intended shape for serving loops.

        ``parallel=True`` selects the *planned* execution path: the
        batch is deduplicated (serving traffic is skewed — identical
        requests are the common case), pre-filtered against the
        result LRU, and the unique misses are fanned out across a
        thread pool.  ``executor`` overrides the strategy entirely
        (any :class:`repro.serving.Executor`).  Answers are identical
        whichever path runs, in request order; the first failing
        request raises its :class:`QueryError` — the typed
        :meth:`execute` surface is the one with per-request errors.
        """
        if executor is None:
            executor = (ThreadExecutor(max_workers) if parallel
                        else InlineExecutor())
        self._queries()
        results = executor.run(self, list(requests), strict=True)
        return [result.unwrap() for result in results]

    def __repr__(self) -> str:
        built = "built" if self.index_built else "lazy"
        return (f"CompressedGraph(rules={self._grammar.num_rules}, "
                f"|G|={self._grammar.size}, index={built})")

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    @property
    def cache(self) -> QueryCache:
        """The handle's query-result LRU."""
        return self._cache

    @property
    def cache_info(self) -> Dict[str, Any]:
        """LRU counters: capacity, size, hits, misses, evictions."""
        return self._cache.info()

    @property
    def cache_hits(self) -> int:
        """Queries answered from the result LRU."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """Queries that fell through to grammar evaluation."""
        return self._cache.misses
