"""Legacy setup shim: the environment's setuptools lacks the wheel
package, so editable installs go through setup.py develop."""
from setuptools import setup

setup()
