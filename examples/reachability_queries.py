#!/usr/bin/env python3
"""Speed-up queries: reachability on the compressed graph (Theorem 6).

The paper's section V proves that (s,t)-reachability can be answered
in time linear in the *grammar* — proportionally faster than BFS over
the decompressed graph — via per-nonterminal skeleton graphs.  The
paper did not implement it; this library does, and this example
demonstrates correctness and measures the speed-up on a
highly-compressible graph.

Run:  python examples/reachability_queries.py
"""

import random
import time
from collections import deque

from repro import CompressedGraph


def bfs_reachable(adjacency, source, target):
    """Plain BFS over the decompressed adjacency (the contender)."""
    if source == target:
        return True
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for succ in adjacency.get(node, ()):
            if succ == target:
                return True
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return False


def chain_of_diamonds(units):
    """A long connected chain of repeated 4-node diamond units.

    Unlike disjoint copies, a BFS here really has to walk the whole
    chain, so the grammar's O(|G|) reachability shows its speed-up.
    """
    from repro import Alphabet, Hypergraph
    alphabet = Alphabet()
    label = alphabet.add_terminal(2, "edge")
    graph = Hypergraph()
    head = graph.add_node()
    for _ in range(units):
        top = graph.add_node()
        bottom = graph.add_node()
        tail = graph.add_node()
        graph.add_edge(label, (head, top))
        graph.add_edge(label, (head, bottom))
        graph.add_edge(label, (top, tail))
        graph.add_edge(label, (bottom, tail))
        head = tail
    return graph, alphabet


def main():
    # A connected chain of 1024 diamonds: compresses like a string.
    graph, alphabet = chain_of_diamonds(1024)
    handle = CompressedGraph.compress(graph, alphabet, validate=False)
    result = handle.result
    print(f"graph: {graph.num_edges} edges, |g| = {graph.total_size}")
    print(f"grammar: |G| = {result.grammar.size} "
          f"({result.size_ratio:.1%} of the graph)")

    val = handle.decompress()
    adjacency = {}
    for _, edge in val.edges():
        adjacency.setdefault(edge.att[0], []).append(edge.att[1])

    rng = random.Random(0)
    nodes = sorted(val.nodes())
    pairs = [(rng.choice(nodes), rng.choice(nodes))
             for _ in range(500)]

    start = time.perf_counter()
    grammar_answers = [handle.reach(s, t) for s, t in pairs]
    grammar_time = time.perf_counter() - start

    start = time.perf_counter()
    bfs_answers = [bfs_reachable(adjacency, s, t) for s, t in pairs]
    bfs_time = time.perf_counter() - start

    assert grammar_answers == bfs_answers
    positive = sum(grammar_answers)
    print(f"{len(pairs)} queries, {positive} reachable pairs, all "
          f"answers agree with BFS")
    print(f"grammar queries: {grammar_time * 1000:7.1f} ms")
    print(f"BFS on graph:    {bfs_time * 1000:7.1f} ms")
    print(f"speed-up: {bfs_time / grammar_time:.1f}x "
          f"(graph/grammar size ratio: "
          f"{val.total_size / result.grammar.size:.0f}x)")

    # Component counting, another one-pass speed-up query:
    print(f"connected components (from grammar): "
          f"{handle.components()} (expected 1)")
    print("reachability example OK")


if __name__ == "__main__":
    main()
