#!/usr/bin/env python3
"""Quickstart: compress a graph, inspect the grammar, query it.

Walks through the complete public API on the paper's own running
example (Figure 1): a "theta graph" of three parallel a-b paths.
gRePair discovers the repeated a-b digram, produces the grammar

    S = A A A        (three parallel nonterminal edges)
    A -> o -a-> o -b-> o    (endpoints external, middle internal)

and the binary container stores S as per-label k2-trees plus the rule
as a delta-coded edge list.

Run:  python examples/quickstart.py
"""

from repro import (
    Alphabet,
    GRePairSettings,
    Hypergraph,
    StreamingCompressor,
    compress,
    derive,
)
from repro.encoding import decode_grammar, encode_grammar
from repro.queries import GrammarQueries


def build_theta_graph():
    """Three parallel a-b paths between one source and one target."""
    alphabet = Alphabet()
    a = alphabet.add_terminal(rank=2, name="a")
    b = alphabet.add_terminal(rank=2, name="b")
    graph = Hypergraph()
    source = graph.add_node()
    target = graph.add_node()
    for _ in range(3):
        middle = graph.add_node()
        graph.add_edge(a, (source, middle))
        graph.add_edge(b, (middle, target))
    return graph, alphabet


def main():
    graph, alphabet = build_theta_graph()
    print(f"input graph: {graph!r}")

    # ------------------------------------------------------------------
    # 1. Compress.  Settings default to the paper's recommendation
    #    (maxRank=4, FP node order, virtual edges, pruning).
    # ------------------------------------------------------------------
    result = compress(graph, alphabet,
                      GRePairSettings(order="natural"))
    grammar = result.grammar
    print(f"compressed:  {result.summary()}")
    for rule in grammar.rules():
        edges = [(alphabet.describe(e.label), e.att)
                 for _, e in rule.rhs.edges()]
        print(f"  rule N{rule.lhs} (rank {rule.rhs.rank}): {edges}")

    # ------------------------------------------------------------------
    # 2. Serialize to the paper's binary format and restore.
    # ------------------------------------------------------------------
    blob = encode_grammar(grammar)
    print(f"container:   {blob.total_bytes} bytes, "
          f"sections {blob.section_bytes}")
    restored = decode_grammar(blob)
    print(f"restored:    {restored!r}")

    # ------------------------------------------------------------------
    # 3. Decompress (derive) — node IDs are deterministic.
    # ------------------------------------------------------------------
    derived = derive(restored)
    print(f"derived:     {derived!r} "
          f"(expected {graph.node_size} nodes, {graph.num_edges} edges)")
    assert derived.node_size == graph.node_size
    assert derived.num_edges == graph.num_edges

    # ------------------------------------------------------------------
    # 4. Query without decompressing (paper section V).
    # ------------------------------------------------------------------
    queries = GrammarQueries(restored)
    print(f"node count (from grammar):  {queries.node_count()}")
    print(f"edge count (from grammar):  {queries.edge_count()}")
    print(f"components (from grammar):  "
          f"{queries.connected_components()}")
    print(f"out-neighbors of node 1:    {queries.out_neighbors(1)}")
    print(f"reachable 1 -> 2?           {queries.reachable(1, 2)}")
    print(f"reachable 2 -> 1?           {queries.reachable(2, 1)}")

    # ------------------------------------------------------------------
    # 5. Engines.  The default "incremental" engine maintains the
    #    digram occurrence lists and the bucket priority queue purely
    #    by local deltas: after one initial counting pass it never
    #    re-counts the graph (stats["recount_passes"] == 0).  The
    #    legacy "recount" engine re-runs full counting passes between
    #    replacements and serves as a correctness/quality oracle.
    # ------------------------------------------------------------------
    incremental = compress(graph, alphabet,
                           GRePairSettings(engine="incremental"))
    recount = compress(graph, alphabet,
                       GRePairSettings(engine="recount"))
    print(f"incremental engine: |G|={incremental.grammar.size}, "
          f"passes={incremental.stats['passes']}, "
          f"re-counts={incremental.stats['recount_passes']}")
    print(f"recount engine:     |G|={recount.grammar.size}, "
          f"passes={recount.stats['passes']}, "
          f"re-counts={recount.stats['recount_passes']}")

    # ------------------------------------------------------------------
    # 6. Streaming compression.  Edges can be fed in chunks; the
    #    incremental state is reused across chunks, so no chunk ever
    #    triggers a re-count of the accumulated graph.
    # ------------------------------------------------------------------
    streamer = StreamingCompressor(alphabet, order="natural")
    chunk = [(edge.label, edge.att) for _, edge in graph.edges()]
    streamer.add_edges(chunk[:len(chunk) // 2])
    streamer.add_edges(chunk[len(chunk) // 2:])
    streamed = streamer.finish()
    print(f"streamed grammar:   |G|={streamed.size} "
          f"(counting passes: {streamer.stats.passes})")
    print("quickstart OK")


if __name__ == "__main__":
    main()
