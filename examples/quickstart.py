#!/usr/bin/env python3
"""Quickstart: one handle for compress, persist, derive and query.

Walks through the public API on the paper's own running example
(Figure 1): a "theta graph" of three parallel a-b paths.  gRePair
discovers the repeated a-b digram, produces the grammar

    S = A A A        (three parallel nonterminal edges)
    A -> o -a-> o -b-> o    (endpoints external, middle internal)

and the binary container stores S as per-label k2-trees plus the rule
as a delta-coded edge list.

The front door is :class:`repro.CompressedGraph` — a long-lived,
thread-safe handle the way production stores expose one ``DB`` object.
The older free functions (``compress``, ``GrammarQueries``, ``derive``)
still work as compatibility shims delegating to the facade.

Run:  python examples/quickstart.py
"""

from repro import (
    Alphabet,
    CompressedGraph,
    GRePairSettings,
    Hypergraph,
    ShardedCompressedGraph,
)


def build_theta_graph():
    """Three parallel a-b paths between one source and one target."""
    alphabet = Alphabet()
    a = alphabet.add_terminal(rank=2, name="a")
    b = alphabet.add_terminal(rank=2, name="b")
    graph = Hypergraph()
    source = graph.add_node()
    target = graph.add_node()
    for _ in range(3):
        middle = graph.add_node()
        graph.add_edge(a, (source, middle))
        graph.add_edge(b, (middle, target))
    return graph, alphabet


def main():
    graph, alphabet = build_theta_graph()
    print(f"input graph: {graph!r}")

    # ------------------------------------------------------------------
    # 1. Compress into a handle.  Settings default to the paper's
    #    recommendation (maxRank=4, FP node order, virtual edges,
    #    pruning); they validate eagerly, so typos fail right here.
    # ------------------------------------------------------------------
    handle = CompressedGraph.compress(graph, alphabet,
                                      GRePairSettings(order="natural"))
    grammar = handle.grammar
    print(f"compressed:  {handle.summary()}")
    for rule in grammar.rules():
        edges = [(alphabet.describe(e.label), e.att)
                 for _, e in rule.rhs.edges()]
        print(f"  rule N{rule.lhs} (rank {rule.rhs.rank}): {edges}")

    # ------------------------------------------------------------------
    # 2. Persist.  The handle serializes to the paper's binary format;
    #    `sizes` breaks the container down by section, loaded or not.
    # ------------------------------------------------------------------
    blob = handle.to_bytes()
    print(f"container:   {len(blob)} bytes, sections {handle.sizes}")
    restored = CompressedGraph.from_bytes(blob)
    print(f"restored:    {restored!r}")

    # ------------------------------------------------------------------
    # 3. Decompress (derive) — node IDs are deterministic and match
    #    the IDs the query family answers with.
    # ------------------------------------------------------------------
    derived = restored.decompress()
    print(f"derived:     {derived!r} "
          f"(expected {graph.node_size} nodes, {graph.num_edges} edges)")
    assert derived.node_size == graph.node_size
    assert derived.num_edges == graph.num_edges

    # ------------------------------------------------------------------
    # 4. Query without decompressing (paper section V).  The index
    #    behind these is built lazily on first use and cached for the
    #    handle's lifetime — exactly one canonicalization pass, even
    #    under concurrent query threads.
    # ------------------------------------------------------------------
    print(f"node count (from grammar):  {restored.node_count()}")
    print(f"edge count (from grammar):  {restored.edge_count()}")
    print(f"components (from grammar):  {restored.components()}")
    print(f"out-neighbors of node 1:    {restored.out(1)}")
    print(f"reachable 1 -> 2?           {restored.reach(1, 2)}")
    print(f"reachable 2 -> 1?           {restored.reach(2, 1)}")
    print(f"shortest path 1 -> 2:       {restored.path(1, 2)}")
    print(f"canonicalization passes:    {restored.canonicalizations}")

    # ------------------------------------------------------------------
    # 5. Batched queries: a serving loop hands the handle many queries
    #    at once; all of them run against the single cached index.
    # ------------------------------------------------------------------
    answers = restored.batch([
        ("reach", 1, 2),
        ("out", 1),
        ("degree", 1),
        ("components",),
        ("path", 1, 2),
    ])
    print(f"batch answers:              {answers}")

    # ------------------------------------------------------------------
    # 6. Engines.  The default "incremental" engine maintains the
    #    digram occurrence lists and the bucket priority queue purely
    #    by local deltas: after one initial counting pass it never
    #    re-counts the graph (stats["recount_passes"] == 0).  The
    #    legacy "recount" engine re-runs full counting passes between
    #    replacements and serves as a correctness/quality oracle.
    # ------------------------------------------------------------------
    incremental = CompressedGraph.compress(
        graph, alphabet, GRePairSettings(engine="incremental"))
    recount = CompressedGraph.compress(
        graph, alphabet, GRePairSettings(engine="recount"))
    print(f"incremental engine: |G|={incremental.grammar.size}, "
          f"passes={incremental.stats['passes']}, "
          f"re-counts={incremental.stats['recount_passes']}")
    print(f"recount engine:     |G|={recount.grammar.size}, "
          f"passes={recount.stats['passes']}, "
          f"re-counts={recount.stats['recount_passes']}")

    # ------------------------------------------------------------------
    # 7. Streaming compression.  Edges can be fed in chunks; the
    #    incremental state is reused across chunks, so no chunk ever
    #    triggers a re-count of the accumulated graph.
    # ------------------------------------------------------------------
    chunk = [(edge.label, edge.att) for _, edge in graph.edges()]
    streamed = CompressedGraph.from_stream(
        [chunk[:len(chunk) // 2], chunk[len(chunk) // 2:]],
        alphabet,
        GRePairSettings(order="natural"),
    )
    print(f"streamed grammar:   |G|={streamed.grammar.size} "
          f"(counting passes: {streamed.stats['passes']})")
    assert streamed.edge_count() == graph.num_edges

    # ------------------------------------------------------------------
    # 8. The query-result LRU.  Every handle memoizes answers keyed by
    #    the batch wire format; hits/misses sit next to the
    #    canonicalization counter for serving dashboards.
    # ------------------------------------------------------------------
    restored.out(1)                      # repeat of step 4: a hit
    info = restored.cache_info
    print(f"query cache:        {info['hits']} hits / "
          f"{info['misses']} misses (capacity {info['capacity']})")

    # ------------------------------------------------------------------
    # 9. Sharded serving.  A graph too large for one grammar is
    #    partitioned across per-shard grammars behind the same API;
    #    queries route to the owning shard and merge across the
    #    boundary summary.  parallel=True plans a batch: dedupe, group
    #    per shard, fan out across threads.
    # ------------------------------------------------------------------
    sharded = ShardedCompressedGraph.compress(graph, alphabet,
                                              shards=2)
    print(f"sharded:            {sharded.summary()}")
    assert sharded.node_count() == graph.node_size
    assert sharded.edge_count() == graph.num_edges
    assert sharded.components() == restored.components()
    assert sharded.degree() == restored.degree()
    answers = sharded.batch(
        [("out", node) for node in range(1, sharded.node_count() + 1)]
        + [("components",), ("degree",)],
        parallel=True,
    )
    print(f"sharded batch:      {len(answers)} answers "
          f"(parallel plan over {sharded.num_shards} shards)")

    # Sharded persistence: one multi-shard container, same open() shape.
    sharded_blob = sharded.to_bytes()
    served = ShardedCompressedGraph.from_bytes(sharded_blob)
    assert served.components() == sharded.components()
    print(f"sharded container:  {len(sharded_blob)} bytes "
          f"({len(served.sizes)} sections)")
    print("quickstart OK")


if __name__ == "__main__":
    main()
