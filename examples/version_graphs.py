#!/usr/bin/env python3
"""Version graphs: near-exponential compression of repeated structure.

Reproduces the paper's two version-graph demonstrations at example
scale:

1. **Identical copies (Fig. 13)** — disjoint unions of one tiny graph.
   gRePair's output grows roughly *logarithmically* in the number of
   copies (hierarchical doubling of nonterminals through the
   virtual-edge chain), while a k2-tree grows linearly.

2. **Growing snapshots (Fig. 14)** — cumulative versions of one
   co-authorship network, compressed under different node orders.  The
   FP order aligns isomorphic versions, so corresponding substructures
   compress identically; random/BFS orders lose most of that.

Run:  python examples/version_graphs.py
"""

from repro import CompressedGraph, GRePairSettings
from repro.baselines import K2Compressor
from repro.datasets.versions import (
    coauthorship_snapshots,
    disjoint_union,
    fig13_base_graph,
    identical_copies,
)


def grepair_size(graph, alphabet, **settings):
    handle = CompressedGraph.compress(graph, alphabet,
                                      GRePairSettings(**settings),
                                      validate=False)
    return len(handle.to_bytes(include_names=False))


def identical_copies_demo():
    print("== identical copies (Fig. 13) ==")
    base = fig13_base_graph()
    k2 = K2Compressor()
    print(f"{'copies':>7s} {'edges':>7s} {'gRePair':>9s} {'k2':>9s}")
    for count in (8, 32, 128, 512):
        graph, alphabet = identical_copies(base, count)
        ours = grepair_size(graph, alphabet)
        baseline = len(k2.compress(graph))
        print(f"{count:7d} {graph.num_edges:7d} {ours:8d}B "
              f"{baseline:8d}B")
    print("-> gRePair grows ~logarithmically, k2 linearly\n")


def snapshot_demo():
    print("== growing snapshots under node orders (Fig. 14) ==")
    snapshots = coauthorship_snapshots(years=8, papers_per_year=25,
                                       seed=42)
    print(f"{'versions':>9s} {'edges':>7s} {'fp':>8s} {'bfs':>8s} "
          f"{'random':>8s}")
    for step in (2, 4, 6, 8):
        graph, alphabet = disjoint_union(snapshots[:step])
        sizes = {
            order: grepair_size(graph, alphabet, order=order, seed=9)
            for order in ("fp", "bfs", "random")
        }
        print(f"{step:9d} {graph.num_edges:7d} "
              f"{sizes['fp']:7d}B {sizes['bfs']:7d}B "
              f"{sizes['random']:7d}B")
    print("-> FP keeps corresponding versions aligned; other orders "
          "degrade as versions accumulate")


def main():
    identical_copies_demo()
    snapshot_demo()
    print("version-graphs example OK")


if __name__ == "__main__":
    main()
