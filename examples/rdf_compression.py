#!/usr/bin/env python3
"""RDF compression: the paper's headline use case (Table V).

Builds an RDF graph from (subject, predicate, object) triples exactly
like the paper's pipeline (dictionary maps resources to node IDs, one
edge label per predicate), compresses it with gRePair and with the
per-predicate k2-tree baseline of Alvarez-Garcia et al., and compares
sizes.  On star-shaped graphs such as DBpedia's instance-types data,
gRePair is orders of magnitude smaller — the effect this example
demonstrates on a synthetic types graph.

Also shows how to map query answers back to resource names through
the dictionary.

Run:  python examples/rdf_compression.py
"""

from repro import CompressedGraph
from repro.baselines import K2Compressor
from repro.datasets.io import graph_from_triples
from repro.datasets.rdf import types_graph


def handcrafted_triples():
    """A miniature DBpedia-like fragment."""
    people = [f"person/{i}" for i in range(6)]
    triples = []
    for person in people:
        triples.append((person, "rdf:type", "class/Person"))
    triples += [
        ("person/0", "foaf:knows", "person/1"),
        ("person/1", "foaf:knows", "person/2"),
        ("person/2", "foaf:knows", "person/0"),
        ("person/3", "dbo:birthPlace", "place/Helsinki"),
        ("person/4", "dbo:birthPlace", "place/Helsinki"),
        ("person/5", "dbo:birthPlace", "place/Edinburgh"),
        ("place/Helsinki", "rdf:type", "class/City"),
        ("place/Edinburgh", "rdf:type", "class/City"),
    ]
    return triples


def small_example():
    print("== small handcrafted RDF graph ==")
    graph, alphabet, dictionary = graph_from_triples(
        handcrafted_triples())
    print(f"triples -> {graph.num_edges} edges over "
          f"{graph.node_size} resources, {len(alphabet)} predicates")
    handle = CompressedGraph.compress(graph, alphabet)
    print(f"compressed: {handle.summary()}")

    # The grammar reproduces an isomorphic copy with deterministic node
    # IDs (paper section III-C2: "the grammar only produces an
    # isomorphic copy ... we can produce a mapping from the new node
    # IDs to the original ones").  Queries therefore run on val(G)
    # IDs; counts and structure are preserved exactly.
    print(f"resources (from grammar):  {handle.node_count()} "
          f"(dictionary holds {len(dictionary)})")
    print(f"triples   (from grammar):  {handle.edge_count()}")
    print(f"connected components:      {handle.components()}")
    sample = 1
    print(f"out-neighbors of node {sample}: {handle.out(sample)}")


def star_benchmark():
    print("\n== DBpedia-style instance-types graph (Table V shape) ==")
    graph, alphabet = types_graph(instances=5000, classes=30, seed=1)
    print(f"graph: {graph.node_size} nodes, {graph.num_edges} "
          f"rdf:type edges")
    handle = CompressedGraph.compress(graph, alphabet)
    ours = len(handle.to_bytes(include_names=False))
    k2 = len(K2Compressor().compress(graph))
    print(f"gRePair: {ours:7d} bytes "
          f"({handle.bits_per_edge(graph.num_edges):5.2f} bpe)")
    print(f"k2-tree: {k2:7d} bytes "
          f"({8.0 * k2 / graph.num_edges:5.2f} bpe)")
    print(f"-> gRePair is {k2 / ours:.0f}x smaller "
          f"(paper: orders of magnitude on types graphs)")


def main():
    small_example()
    star_benchmark()
    print("rdf example OK")


if __name__ == "__main__":
    main()
