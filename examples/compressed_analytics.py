#!/usr/bin/env python3
"""Analytics on the compressed graph: the paper's §V promise in action.

"Using [neighborhood queries], any arbitrary graph algorithm can be
performed on the compressed representation."  This example compresses
an RDF-style dataset once, then answers an analytics mix *without ever
decompressing*:

* one-pass CMSO functions (node/edge counts, components, degree
  extrema) — these are *faster* than on the raw graph,
* traversal kernels (BFS distances, shortest paths, degree histogram)
  built on Prop.-4 neighborhoods,
* a label-constrained regular path query (the paper's named future
  work, implemented here via DFA-product skeletons),
* the same analytics mix served from a *sharded* handle — the graph
  partitioned across per-shard grammars, answers identical, and a
  parallel planned batch for the serving loop.

Run:  python examples/compressed_analytics.py
"""

import random

from repro import CompressedGraph, ShardedCompressedGraph
from repro.datasets.rdf import jamendo_graph
from repro.queries.paths import LabelDFA, RegularPathQueries
from repro.queries.traversal import bfs_distances, degree_histogram, \
    shortest_path


def main():
    graph, alphabet = jamendo_graph(artists=120, seed=3)
    queries = CompressedGraph.compress(graph, alphabet, validate=False)
    blob = queries.to_bytes(include_names=False)
    print(f"dataset: {graph.node_size} nodes, {graph.num_edges} "
          f"triples")
    print(f"compressed to {len(blob)} bytes "
          f"({queries.bits_per_edge(graph.num_edges):.2f} bpe), "
          f"{queries.grammar.num_rules} rules\n")

    # --- one-pass speed-up queries -----------------------------------
    print("speed-up queries (one pass over the grammar):")
    print(f"  nodes:      {queries.node_count()}")
    print(f"  edges:      {queries.edge_count()}")
    print(f"  components: {queries.connected_components()}")
    degrees = queries.degrees()
    print(f"  max out-degree: {degrees.max_out_degree()}")
    print(f"  max in-degree:  {degrees.max_in_degree()}\n")

    # --- neighborhood-based traversal --------------------------------
    print("traversal kernels (neighborhood queries, Prop. 4):")
    source = next(node for node in range(1, queries.node_count() + 1)
                  if len(queries.out_neighbors(node)) >= 2)
    distances = bfs_distances(queries, source, max_hops=3)
    print(f"  nodes within 3 hops of node {source}: {len(distances)}")
    far = max(distances, key=distances.get)
    path = shortest_path(queries, source, far)
    print(f"  a shortest path {source} -> {far}: {path}")
    histogram = degree_histogram(queries)
    top = sorted(histogram.items())[-3:]
    print(f"  out-degree histogram tail: {top}\n")

    # --- regular path query ------------------------------------------
    made = alphabet.by_name("foaf:made")
    track = alphabet.by_name("mo:track")
    dfa = LabelDFA.word([made, track])  # artist -made-> record -track->
    rpq = RegularPathQueries(queries.index, dfa)
    hits = 0
    probes = 0
    # Probe exactly the 2-hop chains the neighborhoods expose; the RPQ
    # engine then certifies which chains spell made . track.
    for source_id in range(1, queries.node_count() + 1):
        if probes >= 4000 or hits >= 25:
            break
        for middle in queries.out_neighbors(source_id):
            for target in queries.out_neighbors(middle):
                probes += 1
                if rpq.matches(source_id, target):
                    hits += 1
    print("regular path query artist -foaf:made-> record "
          "-mo:track-> track:")
    print(f"  {hits} certified matches among {probes} probed "
          f"2-hop chains")
    assert hits > 0

    # --- sharded + parallel serving ----------------------------------
    print("\nsharded serving (same answers, 4 per-shard grammars):")
    sharded = ShardedCompressedGraph.compress(graph, alphabet,
                                              shards=4,
                                              validate=False)
    print(f"  {sharded.summary()}")
    assert sharded.node_count() == queries.node_count()
    assert sharded.edge_count() == queries.edge_count()
    assert (sharded.connected_components()
            == queries.connected_components())
    extrema = sharded.degree()
    assert extrema["max_out"] == degrees.max_out_degree()
    assert extrema["max_in"] == degrees.max_in_degree()

    # A serving loop: one skewed batch, planned and fanned out.
    rng = random.Random(9)
    hot = [rng.randint(1, sharded.node_count()) for _ in range(16)]
    requests = []
    for _ in range(400):
        kind = rng.choice(("out", "in", "neighborhood", "reach"))
        if kind == "reach":
            requests.append((kind, rng.choice(hot), rng.choice(hot)))
        else:
            requests.append((kind, rng.choice(hot)))
    planned = sharded.batch(requests, parallel=True)
    assert planned == sharded.batch(requests)
    reachable_count = sum(
        1 for request, answer in zip(requests, planned)
        if request[0] == "reach" and answer)
    print(f"  served {len(requests)} planned queries "
          f"({reachable_count} reachable pairs), "
          f"boundary edges: {sharded.boundary_edge_count}")
    print("compressed-analytics example OK")


if __name__ == "__main__":
    main()
