#!/usr/bin/env python3
"""Gate engine changes against the committed benchmark baseline.

Recomputes pass counts, settle work, queue operations and compression
ratios for both engines over the shared smoke corpora
(:data:`repro.bench.corpora.SMOKE_CORPORA`) and compares them with
``benchmarks/BENCH_baseline.json``:

* the incremental engine must report **zero** re-count passes and at
  most the baseline's seed passes,
* its compression ratio may not regress by more than ``--tolerance``
  (default 1%) relative to the baseline ratio,
* its ratio must stay within 1% of the recount oracle's current ratio,
* settle work (nodes re-counted) and queue operations may not blow up
  past ``--work-slack`` (default 1.25x) of the baseline,
* the ``CompressedGraph`` facade's lazy index must canonicalize the
  grammar **exactly once** per handle across a serialize -> open ->
  mixed-query lifecycle — zero extra passes over the single pass the
  legacy per-``GrammarQueries`` construction paid (checked absolutely,
  not against the baseline file),
* the sharded serving path: on the gate corpus at 4 shards,
  ``ShardedCompressedGraph`` must answer the differential probe batch
  identically to the sequential path, with parallel ``batch()``
  throughput at least 1.5x sequential (absolute check, shared with
  ``benchmarks/bench_sharded_scaling.py``),
* the socket serving path: a router plus 2 forked shard processes
  must answer 1k mixed queries end to end, identically to the
  in-process path, above the absolute throughput floor — and 64
  concurrent pipelined clients must push more aggregate throughput
  than one strict client gets on the same chunked workload (shared
  with ``benchmarks/bench_serving.py``),
* replica failover: with 2 forked replicas per shard, killing one
  replica of every shard mid-run must retain at least half the
  healthy run's throughput with **zero** wrong answers (shared with
  ``benchmarks/bench_serving.py``),
* the partition layer: on the single-component gate corpus at 4
  shards, the edge-cut partitioners (``bfs`` / ``label``) must cut
  strictly fewer edges than ``hash``, and closure-backed cross-shard
  reach must beat boundary chaining on the same query set (shared
  with ``benchmarks/bench_partitioners.py``),
* the RPQ subsystem: warm product skeletons must answer the gate
  workload at least 20x faster than the naive
  decompress-then-product-BFS evaluator, and RPQ traffic through the
  socket router must clear an absolute q/s floor, with answers
  identical lane for lane (shared with
  ``benchmarks/bench_rpq_extension.py``),
* the traversal kernels: the ``"bitmask"`` kernel must answer the
  hot-set batch-reach workload at least 5x faster than the
  ``"legacy"`` set kernel, summed across all smoke corpora, with
  identical answers (shared with ``benchmarks/bench_kernels.py``),
* the zero-copy decode path: cold-opening a 4-shard container to
  serve one shard must materialize less than 30% of the container
  bytes (shared with ``benchmarks/bench_kernels.py``).

Exit code 0 means no regression; 1 means at least one check failed;
``--update`` rewrites the baseline instead of checking;
``--snapshot N`` additionally writes the full measurement to
``benchmarks/BENCH_<N>.json`` — the per-PR performance snapshot
trail next to the gating baseline.

Usage::

    python scripts/check_bench_regression.py               # check
    python scripts/check_bench_regression.py --update      # re-baseline
    python scripts/check_bench_regression.py --snapshot 10 # check + snap
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro import CompressedGraph, GRePairSettings  # noqa: E402
from repro.bench import SMOKE_CORPORA, compression_stats  # noqa: E402
from repro.core.grammar import SLHRGrammar  # noqa: E402

BASELINE_PATH = _ROOT / "benchmarks" / "BENCH_baseline.json"


def facade_lifecycle(grammar) -> dict:
    """Serialize -> open -> mixed queries; count canonicalizations.

    The legacy path (one ``GrammarQueries`` per grammar) canonicalized
    exactly once per construction; the facade's lazy index must not
    exceed that — one pass per handle lifetime, shared by every query.
    """
    blob = CompressedGraph.from_grammar(grammar).to_bytes(
        include_names=False)
    served = CompressedGraph.from_bytes(blob)

    calls = []
    original = SLHRGrammar.canonicalize

    def counting(self):
        calls.append(1)
        return original(self)

    SLHRGrammar.canonicalize = counting
    try:
        total = served.node_count()
        sample = range(1, min(total, 20) + 1)
        served.batch(
            [("out", node) for node in sample]
            + [("in", node) for node in sample]
            + [("reach", 1, total), ("degree",), ("components",),
               ("edges",)]
        )
    finally:
        SLHRGrammar.canonicalize = original
    return {
        "canonicalizations": served.canonicalizations,
        "canonicalize_calls": len(calls),
    }


def sharded_gate() -> dict:
    """Differential + throughput probe of the sharded serving path.

    Reuses the exact workload and measurement of
    ``benchmarks/bench_sharded_scaling.py``; checked absolutely (a
    parallel path slower than 1.5x sequential at the gate point is a
    regression regardless of any baseline).
    """
    sys.path.insert(0, str(_ROOT / "benchmarks"))
    from bench_sharded_scaling import (  # noqa: E402
        GATE_SHARDS,
        GATE_SPEEDUP,
        build_handle,
        measure_speedup,
        serving_workload,
    )
    handle = build_handle()
    requests = serving_workload(handle.node_count())
    sequential, parallel = measure_speedup(handle, requests)
    return {
        "shards": GATE_SHARDS,
        "requests": len(requests),
        "sequential_ms": round(sequential * 1e3, 2),
        "parallel_ms": round(parallel * 1e3, 2),
        "speedup": round(sequential / parallel, 3),
        "required_speedup": GATE_SPEEDUP,
        "boundary_edges": handle.boundary_edge_count,
    }


def serving_gate() -> dict:
    """Throughput + differential probe of the socket serving path.

    Reuses the exact workload and measurement of
    ``benchmarks/bench_serving.py`` (answers are asserted identical
    to the in-process path inside ``measure_serving``); checked
    absolutely against the module's throughput floor.
    """
    sys.path.insert(0, str(_ROOT / "benchmarks"))
    from bench_serving import (  # noqa: E402
        GATE_CONCURRENT_CLIENTS,
        GATE_CONCURRENT_QPS,
        GATE_CONCURRENT_REQUESTS,
        GATE_FAILOVER_RATIO,
        GATE_FAILOVER_REPLICAS,
        GATE_SHARDS,
        GATE_SOCKET_QPS,
        build_container,
        measure_concurrent,
        measure_failover,
        measure_serving,
        serving_workload,
    )
    handle, blob = build_container()
    requests = serving_workload(handle.node_count())
    inline, socket_time, _ = measure_serving(handle, blob, requests)
    single, concurrent, total = measure_concurrent(handle, blob,
                                                   requests)
    healthy, failover, wrong = measure_failover(handle, blob,
                                                requests)
    return {
        "shards": GATE_SHARDS,
        "requests": len(requests),
        "inline_ms": round(inline * 1e3, 2),
        "socket_ms": round(socket_time * 1e3, 2),
        "socket_qps": round(len(requests) / socket_time, 1),
        "required_qps": GATE_SOCKET_QPS,
        "concurrent_clients": GATE_CONCURRENT_CLIENTS,
        "concurrent_requests": total,
        "single_chunked_qps": round(
            GATE_CONCURRENT_REQUESTS / single, 1),
        "concurrent_qps": round(total / concurrent, 1),
        "required_concurrent_qps": GATE_CONCURRENT_QPS,
        "failover_replicas": GATE_FAILOVER_REPLICAS,
        "failover_healthy_qps": round(len(requests) / healthy, 1),
        "failover_qps": round(len(requests) / failover, 1),
        "failover_ratio": round(healthy / failover, 3),
        "required_failover_ratio": GATE_FAILOVER_RATIO,
        "failover_wrong_answers": wrong,
    }


def partition_gate() -> dict:
    """Edge-cut + reach-regime probe of the partition layer.

    Reuses the exact measurement of
    ``benchmarks/bench_partitioners.py``; checked absolutely (a hash
    cut that beats the edge-cut partitioners, or chaining that beats
    the closure, is a regression regardless of any baseline).
    """
    sys.path.insert(0, str(_ROOT / "benchmarks"))
    from bench_partitioners import partitioner_gate  # noqa: E402
    return partitioner_gate()


def kernel_lane() -> dict:
    """Batch-reach speedup probe of the bitmask traversal kernel.

    Reuses the exact measurement of ``benchmarks/bench_kernels.py``
    (answers asserted identical inside the measurement); checked
    absolutely — a bitmask kernel under the fixed multiple of the
    legacy set kernel on the aggregate batch is a regression
    regardless of any baseline.
    """
    sys.path.insert(0, str(_ROOT / "benchmarks"))
    from bench_kernels import kernel_gate  # noqa: E402
    return kernel_gate()


def cold_open_lane() -> dict:
    """Materialized-bytes probe of the zero-copy container decode.

    Reuses the exact measurement of ``benchmarks/bench_kernels.py``;
    checked absolutely (a 1-of-4-shard open copying toward the whole
    file means an eager decode crept back in).
    """
    sys.path.insert(0, str(_ROOT / "benchmarks"))
    from bench_kernels import cold_open_gate  # noqa: E402
    return cold_open_gate()


def rpq_lane() -> dict:
    """Speedup + served-throughput probe of the RPQ subsystem.

    Reuses the exact measurement of
    ``benchmarks/bench_rpq_extension.py``; checked absolutely (warm
    skeletons slower than the fixed multiple of the naive
    decompress-then-product-BFS evaluator, or served RPQ under the
    q/s floor, is a regression regardless of any baseline).
    """
    sys.path.insert(0, str(_ROOT / "benchmarks"))
    from bench_rpq_extension import rpq_gate  # noqa: E402
    return rpq_gate()


def measure() -> dict:
    """Run both engines over every smoke corpus; collect the metrics."""
    corpora = {}
    for name, builder in SMOKE_CORPORA.items():
        graph, alphabet = builder()
        entry = {"edges": graph.num_edges, "nodes": graph.node_size}
        for engine in ("incremental", "recount"):
            stats, result = compression_stats(
                graph, alphabet, GRePairSettings(engine=engine))
            entry[engine] = {
                "passes": stats.passes,
                "recount_passes": stats.recount_passes,
                "settle_rounds": stats.settle_rounds,
                "nodes_recounted": stats.nodes_recounted,
                "queue_ops": stats.queue_pushes + stats.queue_pops,
                "grammar_size": result.grammar.size,
                "ratio": round(result.size_ratio, 6),
            }
            if engine == "incremental":
                entry["facade"] = facade_lifecycle(result.grammar)
        corpora[name] = entry
    return {"corpora": corpora, "sharded": sharded_gate(),
            "serving": serving_gate(), "partition": partition_gate(),
            "rpq": rpq_lane(), "kernels": kernel_lane(),
            "cold_open": cold_open_lane()}


def check(current: dict, baseline: dict, tolerance: float,
          work_slack: float) -> list:
    """Compare a measurement against the baseline; return failures."""
    failures = []

    def fail(corpus, message):
        failures.append(f"{corpus}: {message}")

    for name, entry in current["corpora"].items():
        base = baseline["corpora"].get(name)
        if base is None:
            fail(name, "missing from baseline (run --update)")
            continue
        inc = entry["incremental"]
        base_inc = base["incremental"]
        if inc["recount_passes"] != 0:
            fail(name, f"incremental engine performed "
                       f"{inc['recount_passes']} re-count passes")
        if inc["passes"] > base_inc["passes"]:
            fail(name, f"seed passes grew: {inc['passes']} > "
                       f"{base_inc['passes']}")
        if inc["ratio"] > base_inc["ratio"] * (1 + tolerance) + 1e-9:
            fail(name, f"ratio regressed: {inc['ratio']:.4f} > "
                       f"{base_inc['ratio']:.4f} (+{tolerance:.0%})")
        oracle_ratio = entry["recount"]["ratio"]
        if inc["ratio"] > oracle_ratio * (1 + tolerance) + 1e-9:
            fail(name, f"ratio drifted from oracle: {inc['ratio']:.4f} "
                       f"vs {oracle_ratio:.4f} (+{tolerance:.0%})")
        for metric in ("nodes_recounted", "queue_ops"):
            allowed = base_inc[metric] * work_slack + 50
            if inc[metric] > allowed:
                fail(name, f"{metric} blew up: {inc[metric]} > "
                           f"{allowed:.0f} "
                           f"(baseline {base_inc[metric]})")
        # Facade gate (absolute, not baseline-relative): one lazy
        # canonicalization per handle, zero extra under a query mix.
        facade = entry.get("facade", {})
        if facade.get("canonicalizations") != 1:
            fail(name, f"facade canonicalized "
                       f"{facade.get('canonicalizations')}x per handle "
                       f"(expected exactly 1)")
        if facade.get("canonicalize_calls") != 1:
            fail(name, f"facade query mix triggered "
                       f"{facade.get('canonicalize_calls')} "
                       f"canonicalize calls (expected 1: the single "
                       f"lazy index build)")
    # Sharded serving gate (absolute): the planned batch path must
    # keep its algorithmic edge over request-at-a-time evaluation.
    sharded = current.get("sharded", {})
    speedup = sharded.get("speedup", 0.0)
    required = sharded.get("required_speedup", 1.5)
    if speedup < required:
        fail("sharded-gate",
             f"parallel batch() is only {speedup:.2f}x sequential at "
             f"{sharded.get('shards')} shards (gate: {required}x)")
    # Socket serving gate (absolute): the router + shard processes
    # must clear the end-to-end throughput floor.
    serving = current.get("serving", {})
    qps = serving.get("socket_qps", 0.0)
    floor = serving.get("required_qps", 150.0)
    if qps < floor:
        fail("serving-gate",
             f"socket serving reached only {qps:.0f} q/s at "
             f"{serving.get('shards')} shards (floor: {floor:.0f})")
    # Concurrent serving gate (absolute + relative): many pipelined
    # clients must beat one strict client on the same chunked
    # workload, or the event loop is serializing connections.
    concurrent_qps = serving.get("concurrent_qps", 0.0)
    concurrent_floor = serving.get("required_concurrent_qps", 150.0)
    single_chunked_qps = serving.get("single_chunked_qps", 0.0)
    if concurrent_qps < concurrent_floor:
        fail("serving-gate",
             f"{serving.get('concurrent_clients')} concurrent clients "
             f"reached only {concurrent_qps:.0f} q/s aggregate "
             f"(floor: {concurrent_floor:.0f})")
    if concurrent_qps < single_chunked_qps:
        fail("serving-gate",
             f"{serving.get('concurrent_clients')} pipelined clients "
             f"pushed {concurrent_qps:.0f} q/s aggregate, below the "
             f"{single_chunked_qps:.0f} q/s one strict client gets on "
             f"the same chunked workload (the loop is serializing)")
    # Failover gate (absolute): killing one replica of every shard
    # mid-run must retain the throughput ratio with zero wrong
    # answers — resilience never trades correctness.
    failover_ratio = serving.get("failover_ratio")
    if failover_ratio is not None:
        required_ratio = serving.get("required_failover_ratio", 0.5)
        wrong = serving.get("failover_wrong_answers", 0)
        if wrong:
            fail("failover-gate",
                 f"{wrong} batch(es) answered wrongly while failing "
                 f"over to a surviving replica")
        if failover_ratio < required_ratio:
            fail("failover-gate",
                 f"throughput with a dead replica fell to "
                 f"{failover_ratio:.0%} of healthy "
                 f"({serving.get('failover_qps'):.0f} vs "
                 f"{serving.get('failover_healthy_qps'):.0f} q/s; "
                 f"floor: {required_ratio:.0%})")
    # Partition gate (absolute): the edge-cut partitioners must cut
    # strictly fewer edges than hash, and closure-backed cross-shard
    # reach must beat boundary chaining.
    partition = current.get("partition", {})
    cut = partition.get("cut", {})
    for name in ("bfs", "label"):
        if name in cut and cut[name] >= cut.get("hash", 0):
            fail("partition-gate",
                 f"{name} partitioner cut {cut[name]} edges, not "
                 f"strictly fewer than hash ({cut.get('hash')})")
    closure_ms = partition.get("closure_ms", 0.0)
    chaining_ms = partition.get("chaining_ms", 0.0)
    if closure_ms >= chaining_ms:
        fail("partition-gate",
             f"closure-backed reach ({closure_ms:.1f} ms) did not "
             f"beat chaining ({chaining_ms:.1f} ms) over "
             f"{partition.get('reach_queries')} cross-shard queries")
    # RPQ gate (absolute): warm product skeletons must beat the naive
    # decompress-then-product-BFS evaluator by the fixed multiple,
    # and served RPQ traffic must clear the router q/s floor.
    rpq = current.get("rpq", {})
    speedup = rpq.get("speedup", 0.0)
    required = rpq.get("required_speedup", 20.0)
    if speedup < required:
        fail("rpq-gate",
             f"skeleton RPQ is only {speedup:.1f}x the naive "
             f"decompress-then-BFS evaluator on "
             f"{rpq.get('corpus')} (gate: {required}x)")
    served_qps = rpq.get("served_qps", 0.0)
    served_floor = rpq.get("required_served_qps", 60.0)
    if served_qps < served_floor:
        fail("rpq-gate",
             f"served RPQ reached only {served_qps:.0f} q/s at "
             f"{rpq.get('served_shards')} shards "
             f"(floor: {served_floor:.0f})")
    # Kernel gate (absolute): the bitmask kernel must keep its batch
    # edge over the legacy set kernel on the aggregate workload.
    kernels = current.get("kernels", {})
    speedup = kernels.get("speedup", 0.0)
    required = kernels.get("required_speedup", 5.0)
    if speedup < required:
        fail("kernel-gate",
             f"bitmask kernel is only {speedup:.2f}x legacy on the "
             f"aggregate batch-reach workload (gate: {required}x)")
    # Cold-open gate (absolute): lazy decode must stay lazy — a
    # 1-of-4-shard open copies only its own shard blob.
    cold = current.get("cold_open", {})
    fraction = cold.get("fraction", 1.0)
    max_fraction = cold.get("required_fraction", 0.30)
    if fraction >= max_fraction:
        fail("cold-open-gate",
             f"cold-opening shard {cold.get('served_shard')} of "
             f"{cold.get('shards')} materialized {fraction:.1%} of "
             f"the container (gate: < {max_fraction:.0%}; sections: "
             f"{cold.get('materialized_sections')})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare engine pass counts / ratios against "
                    "the committed baseline")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="relative ratio tolerance (default 0.01)")
    parser.add_argument("--work-slack", type=float, default=1.25,
                        help="allowed growth factor for settle/queue "
                             "work (default 1.25)")
    parser.add_argument("--snapshot", type=int, metavar="N",
                        help="also write the measurement to "
                             "benchmarks/BENCH_<N>.json (the per-PR "
                             "snapshot trail)")
    args = parser.parse_args(argv)

    current = measure()
    if args.snapshot is not None:
        snapshot_path = (BASELINE_PATH.parent
                         / f"BENCH_{args.snapshot}.json")
        snapshot_path.write_text(json.dumps(current, indent=2,
                                            sort_keys=True) + "\n")
        print(f"snapshot written: {snapshot_path}")
    if args.update:
        BASELINE_PATH.write_text(json.dumps(current, indent=2,
                                            sort_keys=True) + "\n")
        print(f"baseline written: {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update",
              file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = check(current, baseline, args.tolerance, args.work_slack)
    for name, entry in current["corpora"].items():
        inc = entry["incremental"]
        facade = entry.get("facade", {})
        print(f"{name:14s} passes={inc['passes']} "
              f"recounts={inc['recount_passes']} "
              f"ratio={inc['ratio']:.4f} "
              f"(oracle {entry['recount']['ratio']:.4f}) "
              f"facade-canon={facade.get('canonicalizations', '?')}")
    sharded = current.get("sharded", {})
    if sharded:
        print(f"{'sharded-gate':14s} shards={sharded['shards']} "
              f"seq={sharded['sequential_ms']}ms "
              f"par={sharded['parallel_ms']}ms "
              f"speedup={sharded['speedup']:.2f}x "
              f"(gate {sharded['required_speedup']}x)")
    serving = current.get("serving", {})
    if serving:
        print(f"{'serving-gate':14s} shards={serving['shards']} "
              f"inline={serving['inline_ms']}ms "
              f"socket={serving['socket_ms']}ms "
              f"qps={serving['socket_qps']:.0f} "
              f"(floor {serving['required_qps']:.0f}) "
              f"{serving['concurrent_clients']}-client="
              f"{serving['concurrent_qps']:.0f}q/s "
              f"vs single-chunked="
              f"{serving['single_chunked_qps']:.0f}q/s")
        if "failover_ratio" in serving:
            print(f"{'failover-gate':14s} "
                  f"replicas={serving['failover_replicas']} "
                  f"healthy={serving['failover_healthy_qps']:.0f}q/s "
                  f"failover={serving['failover_qps']:.0f}q/s "
                  f"ratio={serving['failover_ratio']:.0%} "
                  f"(floor {serving['required_failover_ratio']:.0%}) "
                  f"wrong={serving['failover_wrong_answers']}")
    rpq = current.get("rpq", {})
    if rpq:
        print(f"{'rpq-gate':14s} corpus={rpq['corpus']} "
              f"skeleton={rpq['skeleton_qps']:.0f}q/s "
              f"naive={rpq['naive_qps']:.0f}q/s "
              f"resident={rpq['resident_qps']:.0f}q/s "
              f"speedup={rpq['speedup']:.0f}x "
              f"(gate {rpq['required_speedup']}x) "
              f"served={rpq['served_qps']:.0f}q/s "
              f"(floor {rpq['required_served_qps']:.0f})")
    kernels = current.get("kernels", {})
    if kernels:
        print(f"{'kernel-gate':14s} corpora={len(kernels['corpora'])} "
              f"legacy={kernels['legacy_ms']}ms "
              f"bitmask={kernels['bitmask_ms']}ms "
              f"speedup={kernels['speedup']:.2f}x "
              f"(gate {kernels['required_speedup']}x)")
    cold = current.get("cold_open", {})
    if cold:
        print(f"{'cold-open-gate':14s} corpus={cold['corpus']} "
              f"shard={cold['served_shard']}/{cold['shards']} "
              f"materialized={cold['materialized_bytes']}/"
              f"{cold['container_bytes']}B "
              f"({cold['fraction']:.1%}, gate "
              f"<{cold['required_fraction']:.0%}) "
              f"open={cold['open_ms']}ms")
    partition = current.get("partition", {})
    if partition:
        cut = partition.get("cut", {})
        print(f"{'partition-gate':14s} "
              + " ".join(f"{name}-cut={cut[name]}"
                         for name in sorted(cut))
              + f" closure={partition['closure_ms']}ms"
              f" (+{partition['closure_build_ms']}ms build,"
              f" break-even ~{partition['break_even_queries']} q)"
              f" chaining={partition['chaining_ms']}ms"
              f" ({partition['speedup']}x)")
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno regressions against", BASELINE_PATH.name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
