#!/usr/bin/env python3
"""Doc-sync check: execute every fenced ``python`` block in the docs.

Documentation that drifts from the code is worse than no
documentation, so this script *runs* the docs: every fenced

    ```python
    ...
    ```

block in ``docs/*.md`` (plus ``README.md``) is executed, top to
bottom.  Blocks within one file share a namespace — later examples may
build on earlier ones, exactly as a reader would run them.  Any
exception fails the check with the offending file, block number and
traceback.

Usage::

    python scripts/check_docs_examples.py            # all docs
    python scripts/check_docs_examples.py docs/api.md  # one file

Exit code 0 when every block runs cleanly, 1 otherwise.  Wired into
the test suite as ``tests/test_docs_examples.py`` so ``pytest`` gates
on doc freshness.
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path
from typing import Iterable, List, Tuple

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

_FENCE = re.compile(r"^```python[ \t]*$(.*?)^```[ \t]*$",
                    re.MULTILINE | re.DOTALL)


def default_documents() -> List[Path]:
    """Every document the check covers, in a stable order."""
    documents = sorted((_ROOT / "docs").glob("*.md"))
    readme = _ROOT / "README.md"
    if readme.exists():
        documents.append(readme)
    return documents


def python_blocks(text: str) -> List[str]:
    """The fenced ``python`` blocks of one markdown document."""
    return [match.group(1).strip("\n")
            for match in _FENCE.finditer(text)]


def _display(path: Path) -> str:
    """Repo-relative rendering when possible, absolute otherwise."""
    try:
        return str(path.relative_to(_ROOT))
    except ValueError:
        return str(path)


def run_document(path: Path) -> Tuple[int, List[str]]:
    """Execute one document's blocks; returns (count, failures)."""
    blocks = python_blocks(path.read_text(encoding="utf-8"))
    namespace: dict = {"__name__": f"docs:{path.name}"}
    failures: List[str] = []
    for number, block in enumerate(blocks, start=1):
        label = f"{_display(path)} block {number}"
        try:
            code = compile(block, label, "exec")
            exec(code, namespace)  # noqa: S102 - the point of the check
        except Exception:
            failures.append(
                f"{label} failed:\n{traceback.format_exc()}")
            # Later blocks build on this one's namespace; running them
            # would only bury the root cause under cascade failures.
            skipped = len(blocks) - number
            if skipped:
                failures.append(
                    f"{_display(path)}: skipped {skipped} later "
                    "block(s) that depend on the failed one")
            break
    return len(blocks), failures


def main(argv: Iterable[str] = ()) -> int:
    arguments = list(argv)
    documents = ([Path(arg).resolve() for arg in arguments]
                 if arguments else default_documents())
    total_blocks = 0
    all_failures: List[str] = []
    for path in documents:
        if not path.exists():
            all_failures.append(f"{path}: no such document")
            continue
        count, failures = run_document(path)
        total_blocks += count
        status = "OK" if not failures else "FAIL"
        print(f"{_display(path)}: {count} python block(s) {status}")
        all_failures.extend(failures)
    if all_failures:
        print(f"\n{len(all_failures)} failing block(s):",
              file=sys.stderr)
        for failure in all_failures:
            print(f"\n{failure}", file=sys.stderr)
        return 1
    print(f"\nall {total_blocks} fenced python blocks executed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
