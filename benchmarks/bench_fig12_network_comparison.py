"""Figure 12 — network graphs: gRePair vs k2-tree vs LM vs HN (bpe).

Paper findings on its eight SNAP graphs:

* gRePair improves on the plain k2-tree on all graphs but NotreDame;
* gRePair is generally worse than LM and HN, with Email-EuAll and
  CA-GrQc as the exceptions.

We assert the two robust parts of that shape at our scale: gRePair
beats (or matches within noise) k2 on a clear majority of graphs while
losing to it only on the web graph, and LM wins on the web graph
(whose copy-model redundancy is LM's home turf).
"""

import pytest

from repro.bench import Report, baseline_sizes, bits_per_edge, \
    grepair_bytes
from repro.datasets import load_dataset
from repro.datasets.registry import names_by_family

_SECTION = "Figure 12: network graphs, bpe by compressor"

_RESULTS = {}


@pytest.mark.parametrize("name", names_by_family("network"))
def test_fig12_one_graph(benchmark, name):
    graph, alphabet = load_dataset(name)

    def run():
        ours, _ = grepair_bytes(graph, alphabet)
        sizes = baseline_sizes(graph, alphabet, include_lm_hn=True)
        sizes["grepair"] = ours
        return {key: bits_per_edge(value, graph.num_edges)
                for key, value in sizes.items()}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = row
    Report.add(_SECTION,
               f"{name:14s} gRePair={row['grepair']:6.2f} "
               f"k2={row['k2']:6.2f} lm={row['lm']:6.2f} "
               f"hn={row['hn']:6.2f}")
    assert row["grepair"] > 0


def test_fig12_shape(benchmark):
    """Aggregate shape assertions over the eight per-graph rows."""

    def run():
        return dict(_RESULTS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 8, "per-graph benches must run first"
    beats_k2 = [name for name, row in results.items()
                if row["grepair"] <= row["k2"] * 1.02]
    lm_wins = [name for name, row in results.items()
               if row["lm"] < row["grepair"]]
    Report.add(_SECTION,
               f"gRePair <= k2 on {len(beats_k2)}/8 graphs: "
               f"{sorted(beats_k2)}")
    Report.add(_SECTION,
               f"LM beats gRePair on {len(lm_wins)}/8 graphs: "
               f"{sorted(lm_wins)}")
    # Paper: gRePair improves on k2 on all graphs but NotreDame (where
    # it at best ties).
    assert len(beats_k2) >= 6
    assert results["notredame"]["grepair"] >= \
        results["notredame"]["k2"] * 0.99
    # Paper: LM/HN win on some graphs (gRePair is "generally worse
    # than LM and HN").  At our scale LM wins on at least one graph;
    # EXPERIMENTS.md discusses where the margin differs.
    assert len(lm_wins) >= 1
