"""Benchmark-suite plumbing: report printing, markers, shared fixtures.

The ``smoke`` marker tags the fast subset of each benchmark module —
small corpora, no timing rounds — so CI can gate merges on
``pytest -m smoke benchmarks`` in seconds while the full paper-table
suite stays opt-in.  ``scripts/check_bench_regression.py`` runs the
same smoke corpora against the committed baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.report import Report

_RESULTS = Path(__file__).parent / "results" / "report.txt"


def pytest_configure(config):
    """Register the smoke marker for standalone benchmark runs."""
    config.addinivalue_line(
        "markers",
        "smoke: fast engine-regression subset of the benchmark suite",
    )


def pytest_terminal_summary(terminalreporter):
    """Print every collected table after the pytest-benchmark output."""
    rendered = Report.render()
    if not rendered.strip():
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper tables and figures (reproduction)")
    for line in rendered.splitlines():
        terminalreporter.write_line(line)
    Report.dump(_RESULTS)
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(also written to {_RESULTS})")
