"""Benchmark-suite plumbing: report printing and shared fixtures."""

from __future__ import annotations

from pathlib import Path

from repro.bench.report import Report

_RESULTS = Path(__file__).parent / "results" / "report.txt"


def pytest_terminal_summary(terminalreporter):
    """Print every collected table after the pytest-benchmark output."""
    rendered = Report.render()
    if not rendered.strip():
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper tables and figures (reproduction)")
    for line in rendered.splitlines():
        terminalreporter.write_line(line)
    Report.dump(_RESULTS)
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(also written to {_RESULTS})")
