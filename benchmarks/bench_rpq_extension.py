"""Extension — regular path queries over the grammar (paper §VI).

The paper lists regular path queries as future work; ``repro.rpq``
implements them over the compressed form: a pattern compiles to a
canonical minimized DFA, product skeletons are memoized per rule
(precomputation ``O(|G| * |Q|^2)``), and each query is then answered
without materializing ``val(G)``.  This module measures that claim:

* **speedup lane** (the regression gate, shared with
  ``scripts/check_bench_regression.py``): on the labeled gate corpus,
  warm-skeleton RPQ throughput must beat the naive
  decompress-then-product-BFS evaluator by
  :data:`GATE_RPQ_SPEEDUP` — where the naive lane pays for a fresh
  ``decompress()`` per query, because a server holding the expanded
  graph resident has given up the compression the subsystem exists
  to keep.  The resident-graph BFS number (decompress once, amortize)
  is reported alongside for honesty but not gated: at smoke-corpus
  sizes a memory-resident BFS wins per query, and the interesting
  regime — ``val(G)`` too big to hold — is exactly where it cannot
  play.
* **answers are asserted identical** between the skeleton and both
  naive lanes, query for query.
* **skeleton accounting**: per-(handle, DFA) builds and skeleton
  entries are reported, demonstrating the ``O(|G| * |Q|^2)``
  precomputation profile.
* **served lane** (gated absolutely): RPQ plus pattern-count traffic
  through the socket router at :data:`GATE_SHARDS` shards must clear
  :data:`GATE_RPQ_SOCKET_QPS`, with answers identical to the
  in-process sharded handle.

Run the smoke lane with ``pytest -m smoke benchmarks`` or the timed
sweep with ``pytest benchmarks/bench_rpq_extension.py``.
"""

import random
import time
from collections import deque

import networkx as nx
import pytest

from repro import CompressedGraph, ShardedCompressedGraph
from repro.bench import Report, SMOKE_CORPORA
from repro.datasets import load_dataset
from repro.rpq import compile_pattern
from repro.serving import serve

_SECTION = "Extension: regular path queries (future work of the paper)"

#: The speedup-lane corpus: the labeled game graph the original
#: extension bench used (3.5k nodes, 4.9k edges, 3 move labels).
GATE_CORPUS = "tic-tac-toe"
#: Queries timed on the warm skeleton lane.
GATE_RPQ_QUERIES = 200
#: Queries timed on the naive decompress-per-query lane (each pays a
#: full ``decompress()``; a handful is plenty to fix the rate).
GATE_NAIVE_QUERIES = 20
#: The gate: warm-skeleton q/s over naive decompress-then-BFS q/s.
#: Measured ~300x on the gate corpus; 20x leaves a wide margin.
GATE_RPQ_SPEEDUP = 20.0
#: The served lane: corpus, shard count and absolute q/s floor.
GATE_SERVED_CORPUS = "rdf-identica"
GATE_SHARDS = 2
GATE_RPQ_SOCKET_QPS = 60.0
GATE_SERVED_QUERIES = 150


def gate_patterns(names):
    """A mixed pattern set over a corpus's label names: literals,
    unions under closure, wildcards, and optionals."""
    return [
        f"<{names[0]}>+",
        f"(<{names[0]}>|<{names[1 % len(names)]}>)* <{names[-1]}>",
        ". . .",
        f"<{names[1 % len(names)]}>? (<{names[-1]}>|.)+",
    ]


def rpq_workload(patterns, total_nodes, count, seed=17):
    rng = random.Random(seed)
    return [(rng.choice(patterns), rng.randint(1, total_nodes),
             rng.randint(1, total_nodes)) for _ in range(count)]


def build_handle(corpus=GATE_CORPUS):
    """An uncached handle over the gate corpus (the LRU would turn
    the timing rounds into dictionary lookups)."""
    graph, alphabet = load_dataset(corpus)
    handle = CompressedGraph.compress(graph, alphabet, validate=False,
                                      cache_size=0)
    return handle, alphabet


def named_graph(handle, alphabet):
    """The naive evaluator's input: ``val(G)`` as a networkx
    multidigraph with label *names* on the edges."""
    val = handle.decompress()
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(val.nodes())
    for _, edge in val.edges():
        graph.add_edge(edge.att[0], edge.att[1],
                       name=alphabet.name(edge.label))
    return graph


def product_bfs(graph, dfa, source, target):
    """Product-automaton BFS over a named networkx graph."""
    if source == target and dfa.start in dfa.accepting:
        return True
    seen = {(source, dfa.start)}
    frontier = deque(seen)
    while frontier:
        node, state = frontier.popleft()
        if node not in graph:
            continue
        for _, successor, data in graph.out_edges(node, data=True):
            next_state = dfa.step_name(state, data["name"])
            if next_state is None:
                continue
            if successor == target and next_state in dfa.accepting:
                return True
            if (successor, next_state) not in seen:
                seen.add((successor, next_state))
                frontier.append((successor, next_state))
    return False


def measure_rpq(handle, alphabet, workload,
                naive_queries=GATE_NAIVE_QUERIES):
    """Time the three lanes on one workload; assert identical answers.

    Returns ``(skeleton_seconds, naive_seconds_per_query,
    resident_seconds, answers)`` where the skeleton lane covers the
    whole workload after a warm-up build, the naive lane pays a fresh
    ``decompress()`` for each of its ``naive_queries`` probes, and
    the resident lane amortizes one decompression over the workload.
    """
    patterns = sorted({pattern for pattern, _, _ in workload})
    for pattern in patterns:  # warm: compile + skeleton build
        handle.rpq(pattern, 1, 1)
    start = time.perf_counter()
    answers = [handle.rpq(pattern, source, target)
               for pattern, source, target in workload]
    skeleton_time = time.perf_counter() - start

    dfas = {pattern: compile_pattern(pattern) for pattern in patterns}
    start = time.perf_counter()
    for (pattern, source, target), expected in \
            zip(workload[:naive_queries], answers):
        fresh = named_graph(handle, alphabet)
        assert product_bfs(fresh, dfas[pattern], source,
                           target) == expected
    naive_per_query = (time.perf_counter() - start) / naive_queries

    start = time.perf_counter()
    resident = named_graph(handle, alphabet)
    resident_answers = [product_bfs(resident, dfas[pattern], source,
                                    target)
                        for pattern, source, target in workload]
    resident_time = time.perf_counter() - start
    assert resident_answers == answers
    return skeleton_time, naive_per_query, resident_time, answers


def served_workload(names, total_nodes, count=GATE_SERVED_QUERIES,
                    seed=23):
    """RPQ-heavy router traffic with a pattern-count tail."""
    rng = random.Random(seed)
    patterns = gate_patterns(names)[:3]
    requests = [("rpq", rng.choice(patterns),
                 rng.randint(1, total_nodes),
                 rng.randint(1, total_nodes))
                for _ in range(count - 4)]
    requests += [("pattern_count", "label", names[0]),
                 ("pattern_count", "digram", names[0], names[-1]),
                 ("pattern_count", "star", names[0], 2),
                 ("out_edges", 1)]
    return requests


def measure_served_rpq(rounds=3):
    """Best-of-N wall time for the RPQ workload through the router.

    Returns ``(handle, socket_seconds, request_count)``; answers are
    asserted identical to the in-process sharded handle.
    """
    graph, alphabet = SMOKE_CORPORA[GATE_SERVED_CORPUS]()
    handle = ShardedCompressedGraph.compress(
        graph, alphabet, shards=GATE_SHARDS, partitioner="bfs",
        validate=False, cache_size=0)
    names = [alphabet.name(label) for label in alphabet.terminals()]
    requests = served_workload(names, handle.node_count())
    expected = handle.batch(requests)
    socket_time = None
    with serve(handle.to_bytes(), cache_size=0) as server:
        with server.connect() as client:
            client.batch(requests[:5])  # warm every shard process
            for _ in range(rounds):
                start = time.perf_counter()
                answers = client.batch(requests)
                elapsed = time.perf_counter() - start
                assert answers == expected
                socket_time = (elapsed if socket_time is None
                               else min(socket_time, elapsed))
    return handle, socket_time, len(requests)


def rpq_gate() -> dict:
    """The numbers ``scripts/check_bench_regression.py`` gates on."""
    handle, alphabet = build_handle()
    names = [alphabet.name(label) for label in alphabet.terminals()]
    workload = rpq_workload(gate_patterns(names),
                            handle.node_count(), GATE_RPQ_QUERIES)
    skeleton_time, naive_per_query, resident_time, _ = \
        measure_rpq(handle, alphabet, workload)
    skeleton_qps = len(workload) / skeleton_time
    naive_qps = 1.0 / naive_per_query
    _, socket_time, served_requests = measure_served_rpq()
    info = handle.rpq_info
    return {
        "corpus": GATE_CORPUS,
        "queries": len(workload),
        "skeleton_qps": round(skeleton_qps, 1),
        "naive_qps": round(naive_qps, 1),
        "resident_qps": round(len(workload) / resident_time, 1),
        "speedup": round(skeleton_qps / naive_qps, 1),
        "required_speedup": GATE_RPQ_SPEEDUP,
        "skeleton_builds": info["skeleton_builds"],
        "skeleton_entries": info["skeleton_entries"],
        "served_corpus": GATE_SERVED_CORPUS,
        "served_shards": GATE_SHARDS,
        "served_requests": served_requests,
        "served_qps": round(served_requests / socket_time, 1),
        "required_served_qps": GATE_RPQ_SOCKET_QPS,
    }


@pytest.mark.smoke
def test_skeleton_rpq_beats_naive_decompression():
    """Acceptance gate: warm-skeleton RPQ vs decompress-per-query."""
    handle, alphabet = build_handle()
    names = [alphabet.name(label) for label in alphabet.terminals()]
    workload = rpq_workload(gate_patterns(names),
                            handle.node_count(), GATE_RPQ_QUERIES)
    skeleton_time, naive_per_query, resident_time, _ = \
        measure_rpq(handle, alphabet, workload)
    skeleton_qps = len(workload) / skeleton_time
    naive_qps = 1.0 / naive_per_query
    info = handle.rpq_info
    Report.add(_SECTION,
               f"{GATE_CORPUS}: {len(workload)} queries, "
               f"{len(gate_patterns(names))} patterns: skeleton "
               f"{skeleton_qps:.0f} q/s vs naive "
               f"{naive_qps:.0f} q/s ({skeleton_qps / naive_qps:.0f}x; "
               f"resident-BFS "
               f"{len(workload) / resident_time:.0f} q/s); "
               f"{info['skeleton_builds']} DFA builds, "
               f"{info['skeleton_entries']} skeleton entries")
    assert skeleton_qps >= naive_qps * GATE_RPQ_SPEEDUP, (
        f"skeleton RPQ at {skeleton_qps:.0f} q/s is under "
        f"{GATE_RPQ_SPEEDUP}x the naive evaluator "
        f"({naive_qps:.0f} q/s)")
    assert info["skeleton_builds"] == info["cached_dfas"]


@pytest.mark.smoke
def test_served_rpq_meets_throughput_floor():
    """Acceptance gate: RPQ traffic through the socket router."""
    _, socket_time, count = measure_served_rpq()
    qps = count / socket_time
    Report.add(_SECTION,
               f"served ({GATE_SERVED_CORPUS}, {GATE_SHARDS} shards): "
               f"{count} rpq/pattern-count requests at {qps:.0f} q/s "
               f"through the router")
    assert qps >= GATE_RPQ_SOCKET_QPS, (
        f"served RPQ reached only {qps:.0f} q/s "
        f"(floor: {GATE_RPQ_SOCKET_QPS:.0f})")


def test_rpq_ground_truth_on_version_graph(benchmark):
    """The original extension lane: correctness on the game graph,
    checked against a resident product-BFS, plus skeleton accounting
    per DFA state count."""
    handle, alphabet = build_handle()
    names = [alphabet.name(label) for label in alphabet.terminals()]
    patterns = gate_patterns(names)
    workload = rpq_workload(patterns, handle.node_count(), 300,
                            seed=11)

    def run():
        return measure_rpq(handle, alphabet, workload,
                           naive_queries=5)

    skeleton_time, _, _, answers = benchmark.pedantic(
        run, rounds=1, iterations=1)
    hits = sum(1 for answer in answers if answer)
    sizes = {pattern: compile_pattern(pattern).num_states
             for pattern in patterns}
    Report.add(_SECTION,
               f"{GATE_CORPUS}, |Q|={sorted(sizes.values())}: "
               f"{len(workload)} queries correct "
               f"({hits} reachable) in {skeleton_time * 1e3:.1f} ms "
               f"warm")
    assert len(answers) == len(workload)
