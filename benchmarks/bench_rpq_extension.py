"""Extension — regular path queries over the grammar (paper §VI).

The paper lists regular path queries as future work; we implemented
them via product skeletons (see ``repro.queries.paths``).  This bench
checks them against ground truth on a labeled version graph and
records the product-skeleton sizes, demonstrating the claimed
complexity profile: precomputation O(|G| * |Q|^2), then per-query work
independent of |val(G)|.
"""

import random

import networkx as nx

from repro.bench import Report
from repro.core.derivation import derive
from repro.core.pipeline import compress
from repro.datasets import load_dataset
from repro.queries.index import GrammarIndex
from repro.queries.paths import LabelDFA, RegularPathQueries

_SECTION = "Extension: regular path queries (future work of the paper)"


def test_rpq_on_version_graph(benchmark):
    graph, alphabet = load_dataset("tic-tac-toe")
    labels = sorted(set(edge.label for _, edge in graph.edges()))
    first = labels[0]
    result = compress(graph, alphabet, validate=False)
    canonical = result.grammar.canonicalize()
    index = GrammarIndex(canonical)
    dfa = LabelDFA.plus(first)

    def build_and_query():
        rpq = RegularPathQueries(index, dfa)
        val = derive(canonical)
        truth = nx.DiGraph()
        truth.add_nodes_from(val.nodes())
        for _, edge in val.edges():
            if edge.label == first:
                truth.add_edge(*edge.att)
        rng = random.Random(11)
        nodes = sorted(val.nodes())
        checked = 0
        for _ in range(300):
            source = rng.choice(nodes)
            target = rng.choice(nodes)
            if source == target:
                continue
            expected = nx.has_path(truth, source, target)
            assert rpq.matches(source, target) == expected
            checked += 1
        return rpq, checked

    rpq, checked = benchmark.pedantic(build_and_query, rounds=1,
                                      iterations=1)
    skeleton_entries = sum(len(pairs) for pairs in
                           rpq._skeletons.values())
    Report.add(_SECTION,
               f"tic-tac-toe, DFA=label+: {checked} queries correct; "
               f"{canonical.num_rules} product skeletons, "
               f"{skeleton_entries} entries total")
    assert checked > 200
