"""Section V — reachability speed-up on compressed graphs.

The paper proves (Theorem 6) that (s,t)-reachability runs in O(|G|)
over the grammar versus O(|g|) BFS over the decompressed graph —
"speed-ups proportional to the compression ratio" — but never
implemented it.  We did, so this bench *measures* the claim on a
highly compressible graph: grammar-based queries touch work
proportional to |G|, BFS touches |g|.

Timing microbenchmarks in Python carry constant-factor noise, so the
assertion is on the robust proxy: the grammar the query engine walks
is much smaller than the graph BFS walks, and query answers agree.
"""

import random
from collections import deque

from repro import CompressedGraph
from repro.bench import Report
from repro.datasets import fig13_base_graph, identical_copies

_SECTION = "Section V: reachability over the grammar"


def _bfs_reachable(adjacency, source, target):
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if node == target:
            return True
        for succ in adjacency.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return target in seen


def test_query_speedup(benchmark):
    graph, alphabet = identical_copies(fig13_base_graph(), 512)
    handle = CompressedGraph.compress(graph, alphabet, validate=False)
    val = handle.decompress()
    adjacency = {}
    for _, edge in val.edges():
        adjacency.setdefault(edge.att[0], []).append(edge.att[1])
    rng = random.Random(7)
    nodes = sorted(val.nodes())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(50)]

    def run():
        return [handle.reach(s, t) for s, t in pairs]

    answers = benchmark.pedantic(run, rounds=3, iterations=1)
    expected = [_bfs_reachable(adjacency, s, t) for s, t in pairs]
    assert answers == expected
    ratio = val.total_size / handle.grammar.size
    Report.add(_SECTION,
               f"512 copies: |g|={val.total_size} vs "
               f"|G|={handle.grammar.size} -> query work bound "
               f"{ratio:.0f}x smaller; 50/50 answers correct")
    assert ratio > 20
