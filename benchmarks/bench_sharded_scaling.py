"""Sharded serving scaling: 1/2/4/8 shards, sequential vs parallel batch.

The :class:`repro.ShardedCompressedGraph` promise is twofold:

* sharding must not change answers (the differential suite in
  ``tests/test_sharding.py`` holds that line), and
* the *planned* batch path — ``batch(..., parallel=True)``, which
  deduplicates the request mix, ships per-shard groups through each
  shard's own ``batch()`` and answers reach queries from per-source
  BFS closures with batch-scoped neighborhood memoization — must beat
  request-at-a-time evaluation on a serving-shaped workload.

The workload is deliberately skewed (a hot set of nodes receives most
traffic, as serving traffic does) and the handles run with
``cache_size=0``: the LRU would hand the sequential path the same
dedup for free, and this module measures the *evaluation* paths, not
the cache.  ``scripts/check_bench_regression.py`` gates on the same
measurement: parallel throughput must be at least 1.5x sequential at
4 shards.

Run the smoke lane with ``pytest -m smoke benchmarks`` or the timed
sweep with ``pytest benchmarks/bench_sharded_scaling.py``.
"""

import random
import time

import pytest

from repro import ShardedCompressedGraph
from repro.bench import Report, SMOKE_CORPORA

_SECTION = "Sharded serving: sequential vs parallel batch()"

#: The gate corpus and the acceptance threshold at 4 shards.
GATE_CORPUS = "communication"
GATE_SHARDS = 4
GATE_SPEEDUP = 1.5

_SHARD_SWEEP = (1, 2, 4, 8)


def serving_workload(total_nodes, count=1000, seed=11, hot=24):
    """A skewed serving mix: hot-set neighborhoods, degrees, reach."""
    rng = random.Random(seed)
    hot_nodes = [rng.randint(1, total_nodes) for _ in range(hot)]
    requests = []
    for _ in range(count):
        kind = rng.choice(("out", "out", "in", "neighborhood",
                           "degree", "reach"))
        if kind == "reach":
            requests.append((kind, rng.choice(hot_nodes),
                             rng.choice(hot_nodes)))
        else:
            requests.append((kind, rng.choice(hot_nodes)))
    return requests


def build_handle(corpus=GATE_CORPUS, shards=GATE_SHARDS):
    """An uncached sharded handle over one smoke corpus."""
    graph, alphabet = SMOKE_CORPORA[corpus]()
    return ShardedCompressedGraph.compress(
        graph, alphabet, shards=shards, cache_size=0, validate=False)


def measure_speedup(handle, requests, rounds=3):
    """Best-of-N sequential vs parallel wall time for one batch."""
    handle.batch(requests[:10])  # build every index outside the timing
    sequential = parallel = None
    for _ in range(rounds):
        start = time.perf_counter()
        expected = handle.batch(requests)
        elapsed = time.perf_counter() - start
        sequential = elapsed if sequential is None \
            else min(sequential, elapsed)
        start = time.perf_counter()
        planned = handle.batch(requests, parallel=True)
        elapsed = time.perf_counter() - start
        parallel = elapsed if parallel is None \
            else min(parallel, elapsed)
        assert planned == expected
    return sequential, parallel


@pytest.mark.smoke
def test_parallel_batch_beats_sequential_at_gate_point():
    """Acceptance gate: >= 1.5x throughput at 4 shards."""
    handle = build_handle()
    requests = serving_workload(handle.node_count())
    sequential, parallel = measure_speedup(handle, requests)
    speedup = sequential / parallel
    Report.add(_SECTION,
               f"{GATE_CORPUS}, {GATE_SHARDS} shards, "
               f"{len(requests)} requests: seq {sequential * 1e3:.1f} ms, "
               f"par {parallel * 1e3:.1f} ms ({speedup:.2f}x)")
    assert speedup >= GATE_SPEEDUP, (
        f"parallel batch is only {speedup:.2f}x sequential "
        f"(gate: {GATE_SPEEDUP}x)"
    )


@pytest.mark.smoke
def test_parallel_answers_identical_across_shard_counts():
    """The planned path is an optimization, never a semantic change."""
    for shards in _SHARD_SWEEP:
        handle = build_handle(shards=shards)
        requests = serving_workload(handle.node_count(), count=300,
                                    seed=23)
        assert (handle.batch(requests, parallel=True)
                == handle.batch(requests))


@pytest.mark.parametrize("shards", _SHARD_SWEEP)
def test_sharded_scaling_sweep(benchmark, shards):
    """Timed sweep: the full 1/2/4/8-shard table for the report."""
    handle = build_handle(shards=shards)
    requests = serving_workload(handle.node_count())
    handle.batch(requests[:10])

    def run():
        return handle.batch(requests, parallel=True)

    answers = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(answers) == len(requests)
    sequential, parallel = measure_speedup(handle, requests, rounds=2)
    throughput = len(requests) / parallel
    Report.add(_SECTION,
               f"{shards} shard(s): {len(requests)} requests, "
               f"seq {sequential * 1e3:7.1f} ms, "
               f"par {parallel * 1e3:7.1f} ms, "
               f"{throughput:9.0f} q/s planned, "
               f"speedup {sequential / parallel:5.2f}x, "
               f"boundary={handle.boundary_edge_count}")
