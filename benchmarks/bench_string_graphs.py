"""Section VI — gRePair on string graphs vs classic string RePair.

The paper's conclusion: "gRePair over string- and tree-graphs obtains
similar compression ratios as the original specialized versions for
strings and trees [15], [16]."

We embed repetitive and random strings as labeled path graphs,
compress them with gRePair, and compare grammar sizes against our
string RePair (Larsson-Moffat).  "Similar ratio" at graph scale means:
on highly repetitive input both reach logarithmic size; on random
input neither compresses.
"""

import random

from repro.bench import Report
from repro.baselines.strrepair import string_repair
from repro.core.pipeline import compress
from repro.datasets.strings import repeated_string, string_to_graph

_SECTION = "Section VI: string graphs vs string RePair (grammar size)"


def test_string_graph_compression(benchmark):
    cases = {
        "(ab)^128": repeated_string("ab", 128),
        "(abcd)^64": repeated_string("abcd", 64),
        "(abc)^8^2": repeated_string(repeated_string("abc", 8), 8),
    }
    rng = random.Random(5)
    cases["random256"] = "".join(rng.choice("abcd") for _ in range(256))

    def run():
        rows = {}
        for name, text in cases.items():
            graph, alphabet = compress_input = string_to_graph(text)
            graph_result = compress(graph, alphabet, validate=False)
            symbols = [ord(c) for c in text]
            string_grammar = string_repair(symbols)
            rows[name] = (len(text), graph_result.grammar.size,
                          string_grammar.size)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (length, graph_size, string_size) in rows.items():
        Report.add(_SECTION,
                   f"{name:12s} |w|={length:4d}  gRePair |G|="
                   f"{graph_size:4d}  string RePair={string_size:4d}")
    # Repetitive strings: both compress far below the input length.
    for name in ("(ab)^128", "(abcd)^64", "(abc)^8^2"):
        length, graph_size, string_size = rows[name]
        assert graph_size < length
        assert string_size < length
        # Similar ratio: within a constant factor (graphs also pay for
        # node bookkeeping, so allow a generous constant).
        assert graph_size <= 8 * string_size
    # Random strings: neither helps much.
    length, graph_size, string_size = rows["random256"]
    assert string_size > length * 0.5
