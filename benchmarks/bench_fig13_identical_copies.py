"""Figure 13 — disjoint unions of one tiny graph, 8..4096 copies.

The paper's exponential-compression showcase: the unit is "a directed
circle with four nodes and one of the two possible diagonal edges";
with c identical copies, gRePair's output grows ~logarithmically in c
("exponential compression") while every baseline's output grows
linearly.  Both axes of the paper's plot are logarithmic.

Assertions: quadrupling the copies from 64 to 1024 (16x more edges)
grows gRePair's output by far less than 4x, while k2's output grows
by at least 6x.
"""

from repro.bench import Report, baseline_sizes, grepair_bytes
from repro.datasets import fig13_base_graph, identical_copies

_SECTION = "Figure 13: identical copies (output bytes)"
_COUNTS = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]


def test_fig13_growth_curves(benchmark):
    base = fig13_base_graph()

    def run():
        curve = {}
        for count in _COUNTS:
            graph, alphabet = identical_copies(base, count)
            ours, _ = grepair_bytes(graph, alphabet)
            k2 = baseline_sizes(graph, alphabet,
                                include_lm_hn=(count <= 1024))
            curve[count] = (graph.num_edges, ours, k2)
        return curve

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    for count in _COUNTS:
        edges, ours, base_sizes = curve[count]
        extras = " ".join(f"{key}={value}" for key, value in
                          sorted(base_sizes.items()))
        Report.add(_SECTION,
                   f"copies={count:5d} |E|={edges:6d} "
                   f"gRePair={ours:6d} B  {extras}")

    ours_64 = curve[64][1]
    ours_1024 = curve[1024][1]
    k2_64 = curve[64][2]["k2"]
    k2_1024 = curve[1024][2]["k2"]
    Report.add(_SECTION,
               f"64 -> 1024 copies (16x edges): gRePair x"
               f"{ours_1024 / ours_64:.1f}, k2 x{k2_1024 / k2_64:.1f}")
    assert ours_1024 < 4 * ours_64          # strongly sublinear
    assert k2_1024 > 6 * k2_64              # roughly linear
    # And the headline: at 4096 copies gRePair is orders of magnitude
    # smaller than the k2 baseline.
    assert curve[4096][2]["k2"] > 20 * curve[4096][1]
