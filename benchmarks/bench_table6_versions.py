"""Table VI — version graphs: bpe for gRePair / k2 / LM / HN.

Paper numbers (bpe):

    ========== ===== ====== ========== ==========
    compressor  TTT  Chess  DBLP60-70  DBLP60-90
    ========== ===== ====== ========== ==========
    gRePair     0.12   9.06       9.54      13.39
    k2-tree     9.62  13.10      15.78      20.80
    LM             -      -      16.44      19.32
    HN             -      -      16.65      18.26
    ========== ===== ====== ========== ==========

(TTT and Chess are labeled, so LM/HN do not apply.)  Shape to hold:
gRePair best everywhere, with a giant margin on Tic-Tac-Toe.
"""

import pytest

from repro.bench import Report, baseline_sizes, bits_per_edge, \
    grepair_bytes
from repro.datasets import load_dataset
from repro.datasets.registry import names_by_family

_SECTION = "Table VI: version graphs (bpe)"

_RESULTS = {}


@pytest.mark.parametrize("name", names_by_family("version"))
def test_table6_one_graph(benchmark, name):
    graph, alphabet = load_dataset(name)
    labeled = len(alphabet) > 1

    def run():
        ours, _ = grepair_bytes(graph, alphabet)
        sizes = baseline_sizes(graph, alphabet,
                               include_lm_hn=not labeled)
        sizes["grepair"] = ours
        return {key: bits_per_edge(value, graph.num_edges)
                for key, value in sizes.items()}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = row
    extra = (f" lm={row['lm']:6.2f} hn={row['hn']:6.2f}"
             if "lm" in row else " (labeled: k2 only, as in paper)")
    Report.add(_SECTION,
               f"{name:14s} gRePair={row['grepair']:6.2f} "
               f"k2={row['k2']:6.2f}{extra}")
    # gRePair is the best contender on every version graph.
    for contender, bpe in row.items():
        if contender != "grepair":
            assert row["grepair"] <= bpe * 1.02, (name, contender)


def test_table6_ttt_margin(benchmark):
    def run():
        return _RESULTS.get("tic-tac-toe")

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row is not None, "per-graph benches must run first"
    # Paper: 0.12 vs 9.62 bpe (80x); we require >= 5x at our scale.
    assert row["k2"] > 5 * row["grepair"]
    Report.add(_SECTION,
               f"tic-tac-toe margin: k2/gRePair = "
               f"{row['k2'] / row['grepair']:.1f}x")
