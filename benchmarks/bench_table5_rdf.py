"""Table V — RDF graphs: gRePair vs k2-tree (output size).

Paper numbers (kB): gRePair 1271/1/3/267/30/872 vs k2-tree
2731/590/938/1119/52/988 — gRePair always smaller, and *orders of
magnitude* smaller on the star-shaped instance-types graphs.

Assertions: gRePair wins on all six stand-ins, and wins by >= 5x on
every types graph.
"""

import pytest

from repro.bench import Report, baseline_sizes, grepair_bytes
from repro.datasets import load_dataset
from repro.datasets.registry import names_by_family

_SECTION = "Table V: RDF graphs, output size in bytes"

_RESULTS = {}


@pytest.mark.parametrize("name", names_by_family("rdf"))
def test_table5_one_graph(benchmark, name):
    graph, alphabet = load_dataset(name)

    def run():
        ours, _ = grepair_bytes(graph, alphabet)
        k2 = baseline_sizes(graph, alphabet,
                            include_lm_hn=False)["k2"]
        return ours, k2

    ours, k2 = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = (ours, k2)
    Report.add(_SECTION,
               f"{name:20s} gRePair={ours:8d} B  k2={k2:8d} B  "
               f"(k2/gRePair = {k2 / ours:5.1f}x)")
    assert ours < k2


def test_table5_types_graphs_win_by_an_order_of_magnitude(benchmark):
    def run():
        return dict(_RESULTS)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 6, "per-graph benches must run first"
    for name in ("rdf-types-ru", "rdf-types-es", "rdf-types-de"):
        ours, k2 = results[name]
        assert k2 > 5 * ours, (name, ours, k2)
    Report.add(_SECTION,
               "types graphs: k2/gRePair = "
               + ", ".join(f"{results[n][1] / results[n][0]:.0f}x"
                           for n in ("rdf-types-ru", "rdf-types-es",
                                     "rdf-types-de")))
