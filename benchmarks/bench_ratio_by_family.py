"""Section IV-C — grammar-size compression ratio |G|/|g| by family.

Paper: "On average we achieve a compression ratio (|G|/|g|) of 68% for
network graphs, 35% for RDF, and 24% for version graphs", and "in most
results the majority of the file size of gRePair's output (> 90%) is
for the k2-tree representation of the start graph".

This bench reproduces both observations (family averages strictly
ordered network > rdf > version; start-graph dominance on network
graphs) and doubles as the ablation harness for the two design knobs
DESIGN.md calls out: the virtual-edge pass and pruning.
"""

from statistics import mean

from repro.bench import Report, grepair_bytes
from repro.core.pipeline import GRePairSettings, compress
from repro.datasets import load_dataset
from repro.datasets.registry import names_by_family
from repro.encoding import encode_grammar

_SECTION = "Section IV-C: |G|/|g| ratios and ablations"


def test_ratio_by_family(benchmark):
    def run():
        ratios = {}
        for family in ("network", "rdf", "version"):
            values = []
            for name in names_by_family(family):
                graph, alphabet = load_dataset(name)
                result = compress(graph, alphabet, validate=False)
                values.append(result.size_ratio)
            ratios[family] = mean(values)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    for family, value in ratios.items():
        Report.add(_SECTION, f"mean |G|/|g| ({family:7s}) = {value:.1%}")
    # Paper: 68% network / 35% RDF / 24% version.  The robust shape is
    # that network graphs compress far worse than both structured
    # families; whether RDF or version wins flips with dataset mix
    # (our RDF stand-ins land at ~16%, versions at ~19%).
    assert ratios["network"] > 2 * ratios["rdf"]
    assert ratios["network"] > 2 * ratios["version"]


def test_start_graph_dominates_output_on_networks(benchmark):
    graph, alphabet = load_dataset("ca-astroph")

    def run():
        result = compress(graph, alphabet, validate=False)
        blob = encode_grammar(result.grammar, include_names=False)
        return blob.section_bytes

    sections = benchmark.pedantic(run, rounds=1, iterations=1)
    start_share = sections["start"] / sum(sections.values())
    Report.add(_SECTION,
               f"ca-astroph start-graph share of output: "
               f"{start_share:.0%} (paper: > 90%)")
    assert start_share > 0.5


def test_ablation_virtual_edges(benchmark):
    """Virtual edges are what make version graphs compress."""
    graph, alphabet = load_dataset("tic-tac-toe")

    def run():
        with_virtual, _ = grepair_bytes(
            graph, alphabet, GRePairSettings(virtual_edges=True))
        without, _ = grepair_bytes(
            graph, alphabet, GRePairSettings(virtual_edges=False))
        return with_virtual, without

    with_virtual, without = benchmark.pedantic(run, rounds=1,
                                               iterations=1)
    Report.add(_SECTION,
               f"ablation tic-tac-toe: virtual-edges {with_virtual} B "
               f"vs disabled {without} B")
    assert with_virtual < without


def test_ablation_pruning(benchmark):
    """Pruning must never hurt and usually helps on network graphs."""
    graph, alphabet = load_dataset("ca-condmat")

    def run():
        pruned, _ = grepair_bytes(graph, alphabet,
                                  GRePairSettings(prune=True))
        unpruned, _ = grepair_bytes(graph, alphabet,
                                    GRePairSettings(prune=False))
        return pruned, unpruned

    pruned, unpruned = benchmark.pedantic(run, rounds=1, iterations=1)
    Report.add(_SECTION,
               f"ablation ca-condmat: pruning {pruned} B vs "
               f"no pruning {unpruned} B")
    assert pruned <= unpruned * 1.05


def test_ablation_fp_iterations(benchmark):
    """FP0 (degrees only) vs full fixpoint on a version graph."""
    graph, alphabet = load_dataset("dblp60-70")

    def run():
        fp, _ = grepair_bytes(graph, alphabet,
                              GRePairSettings(order="fp"))
        fp0, _ = grepair_bytes(graph, alphabet,
                               GRePairSettings(order="fp0"))
        return fp, fp0

    fp, fp0 = benchmark.pedantic(run, rounds=1, iterations=1)
    Report.add(_SECTION,
               f"ablation dblp60-70: FP {fp} B vs FP0 {fp0} B")
    assert fp <= fp0 * 1.10
