"""Figure 10 — compression under different node orders.

Paper findings: the FP order achieves the best result on most graphs,
but the spread is surprisingly small on network and RDF graphs
(< 0.5 bpe on RDF); version graphs benefit *hugely* from FP, because
isomorphic versions are ordered similarly, aligning the greedy
occurrence search across copies.
"""

import pytest

from repro.bench import Report, bits_per_edge, grepair_bytes
from repro.core.pipeline import GRePairSettings
from repro.datasets import load_dataset

_SECTION = "Figure 10: node orders (bpe)"
_ORDERS = ["natural", "bfs", "random", "fp0", "fp"]
# One representative per family plus the paper's outliers.
_GRAPHS = ["ca-astroph", "email-euall", "rdf-properties-en",
           "rdf-jamendo", "tic-tac-toe", "dblp60-70"]


@pytest.mark.parametrize("name", _GRAPHS)
def test_fig10_order_comparison(benchmark, name):
    graph, alphabet = load_dataset(name)

    def run():
        row = {}
        for order in _ORDERS:
            size, _ = grepair_bytes(
                graph, alphabet,
                GRePairSettings(order=order, seed=17))
            row[order] = bits_per_edge(size, graph.num_edges)
        return row

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    cells = " ".join(f"{order}:{row[order]:6.2f}" for order in _ORDERS)
    best = min(row, key=row.get)
    Report.add(_SECTION, f"{name:18s} {cells}   best={best}")
    if name == "rdf-jamendo":
        # The paper singles Jamendo out as the one RDF graph where a
        # non-FP order wins by about 1 bpe; our stand-in reproduces
        # the outlier (BFS/natural ahead of FP).
        assert row["fp"] <= row[best] + 1.5
    else:
        # FP must be competitive everywhere else: within 15% of best.
        assert row["fp"] <= row[best] * 1.15 + 0.2


def test_fig10_fp_wins_big_on_version_graphs(benchmark):
    """The paper's headline Figure 10/14 effect."""
    graph, alphabet = load_dataset("dblp60-70")

    def run():
        fp_size, _ = grepair_bytes(graph, alphabet,
                                   GRePairSettings(order="fp"))
        rnd_size, _ = grepair_bytes(
            graph, alphabet, GRePairSettings(order="random", seed=23))
        return (bits_per_edge(fp_size, graph.num_edges),
                bits_per_edge(rnd_size, graph.num_edges))

    fp_bpe, random_bpe = benchmark.pedantic(run, rounds=1, iterations=1)
    Report.add(_SECTION,
               f"dblp60-70 version-graph effect: fp={fp_bpe:.2f} "
               f"random={random_bpe:.2f}")
    assert fp_bpe < random_bpe
