"""Table IV — compression (bpe) for maxRank in {2..8} on six graphs.

Paper finding: "In most cases the best result was either achieved with
a setting of 2 or with a value of 4.  Even in the cases where a
maximal rank of 4 does not yield the best result, the difference is
less than 1 bpe" — small maxRank wins, large ranks degrade.

We sweep the same six graph families (Email-EuAll, NotreDame, the
three CA graphs, Email-Enron).  Expected shape: the per-graph minimum
sits at rank 2-4, and rank >= 6 is never the winner.
"""

import pytest

from repro.bench import Report, bits_per_edge, grepair_bytes
from repro.core.pipeline import GRePairSettings
from repro.datasets import load_dataset

_SECTION = "Table IV: maxRank sweep (bpe)"
_GRAPHS = ["email-euall", "notredame", "ca-astroph", "ca-condmat",
           "ca-grqc", "email-enron"]
_RANKS = [2, 3, 4, 5, 6, 7, 8]


@pytest.mark.parametrize("name", _GRAPHS)
def test_table4_maxrank_sweep(benchmark, name):
    graph, alphabet = load_dataset(name)

    def run():
        row = {}
        for rank in _RANKS:
            size, _ = grepair_bytes(
                graph, alphabet, GRePairSettings(max_rank=rank))
            row[rank] = bits_per_edge(size, graph.num_edges)
        return row

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    best = min(row, key=row.get)
    cells = " ".join(f"{rank}:{row[rank]:6.2f}" for rank in _RANKS)
    Report.add(_SECTION, f"{name:14s} {cells}   best=maxRank {best}")
    # Paper shape: the best setting is a small rank (2-4; the paper
    # observed 2 or 4), and large ranks only degrade ("we did some
    # tests for higher values but only got worse results").
    assert best <= 4
    assert row[4] <= row[8] * 1.2
    # Our greedy counting penalizes intermediate ranks on the CA
    # graphs more than the paper's prototype did (maxRank=2 wins by a
    # wider margin); EXPERIMENTS.md discusses the deviation.
