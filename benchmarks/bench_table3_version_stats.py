"""Table III — version graph statistics: |V|, |E|, |Sigma|, |[~FP]|.

Tic-Tac-Toe is the paper's repetitiveness extreme: 5634 nodes but only
9 FP classes.  The stand-in must land in the same
few-classes-per-thousand-nodes regime.
"""

from repro.bench import Report
from repro.core.orders import fp_equivalence_classes
from repro.datasets import load_dataset
from repro.datasets.registry import names_by_family

_SECTION = "Table III: version graphs (|V|, |E|, |Sigma|, |[~FP]|)"


def test_table3_version_stats(benchmark):
    names = names_by_family("version")

    def run():
        stats = {}
        for name in names:
            graph, alphabet = load_dataset(name)
            classes = fp_equivalence_classes(graph)
            stats[name] = (graph.node_size, classes)
            Report.add(
                _SECTION,
                f"{name:18s} |V|={graph.node_size:7d} "
                f"|E|={graph.num_edges:7d} |Sigma|={len(alphabet):3d} "
                f"|[~FP]|={classes:7d}")
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    ttt_nodes, ttt_classes = stats["tic-tac-toe"]
    # Tic-Tac-Toe regime: classes are a vanishing fraction of nodes.
    assert ttt_classes < ttt_nodes / 50
    # Chess is far more diverse than TTT (paper: 74592 vs 9 classes).
    assert stats["chess"][1] > 10 * ttt_classes
