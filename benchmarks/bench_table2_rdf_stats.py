"""Table II — RDF graph statistics: |V|, |E|, |Sigma|, |[~FP]|.

The paper's types graphs are the extreme case: hundreds of thousands
of nodes but only tens to hundreds of FP classes.  The stand-ins must
reproduce that tiny-class-fraction regime, which Fig. 11 then ties to
compression quality.
"""

from repro.bench import Report
from repro.core.orders import fp_equivalence_classes
from repro.datasets import load_dataset
from repro.datasets.registry import names_by_family

_SECTION = "Table II: RDF graphs (|V|, |E|, |Sigma|, |[~FP]|)"


def test_table2_rdf_stats(benchmark):
    names = names_by_family("rdf")

    def run():
        fractions = {}
        for name in names:
            graph, alphabet = load_dataset(name)
            classes = fp_equivalence_classes(graph)
            fractions[name] = classes / max(1, graph.node_size)
            Report.add(
                _SECTION,
                f"{name:18s} |V|={graph.node_size:7d} "
                f"|E|={graph.num_edges:7d} |Sigma|={len(alphabet):3d} "
                f"|[~FP]|={classes:7d} "
                f"({fractions[name]:.2%} of nodes)")
        return fractions

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    # Paper regime: types graphs have a minuscule class fraction
    # (79 classes / 642k nodes), properties graphs a large one.
    assert fractions["rdf-types-ru"] < 0.02
    assert fractions["rdf-properties-en"] > 0.10
