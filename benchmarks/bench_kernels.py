"""Traversal-kernel and zero-copy cold-open gates.

Two absolute acceptance measurements for the raw-speed pass, shared
with ``scripts/check_bench_regression.py``:

* **kernel gate** — batch reachability over a hot-set-skewed workload
  (the shape serving traffic has: 80% of pairs land in a small hot
  set, so the bitmask kernel's per-source-bit closure cache pays each
  BFS once per batch).  Summed across *all* smoke corpora, the
  ``"bitmask"`` kernel must answer the batch at least
  :data:`GATE_KERNEL_SPEEDUP` (5x) faster than the ``"legacy"``
  dict/set kernel, with every answer identical.  The aggregate is the
  gate — per-corpus ratios vary with graph shape (sparse line graphs
  barely touch the closure cache; dense communication graphs clear
  30x) and the sum is what a mixed serving fleet experiences.

* **cold-open gate** — a :class:`repro.serving.router.ShardHost`
  opening a 4-shard container to serve shard 1 must *materialize*
  (copy out of the mmap into owned ``bytes``) less than
  :data:`GATE_COLD_OPEN_FRACTION` (30%) of the container bytes.  The
  :attr:`DecodedContainer.materialized_bytes` counter is the
  observable; with the lazy span decoder the host copies exactly its
  own shard blob (~1-2% at 4 shards), and anything approaching 30%
  means someone re-grew an eager decode.

Run the smoke lane with ``pytest -m smoke benchmarks/bench_kernels.py``.
"""

import random
import tempfile
import time
from pathlib import Path

import pytest

from repro.api import CompressedGraph
from repro.bench import Report, SMOKE_CORPORA
from repro.queries.reachability import ReachabilityQueries
from repro.sharding import ShardedCompressedGraph

_SECTION = "Traversal kernels: bitmask vs legacy batch reach"

#: Aggregate batch-reach speedup the bitmask kernel must clear across
#: all smoke corpora, and the materialized fraction a 1-of-4-shard
#: cold open must stay under.
GATE_KERNEL_SPEEDUP = 5.0
GATE_COLD_OPEN_FRACTION = 0.30
GATE_COLD_OPEN_CORPUS = "communication"
GATE_COLD_OPEN_SHARDS = 4


def reach_workload(total_nodes, count=400, seed=11, hot=24):
    """Hot-set-skewed reach pairs: 80% within a small hot set."""
    rng = random.Random(seed)
    hot_nodes = [rng.randint(1, total_nodes) for _ in range(hot)]
    pairs = []
    for _ in range(count):
        if rng.random() < 0.8:
            pairs.append((rng.choice(hot_nodes), rng.choice(hot_nodes)))
        else:
            pairs.append((rng.randint(1, total_nodes),
                          rng.randint(1, total_nodes)))
    return pairs


def _time_batch(engine, pairs, rounds=2):
    """Best-of-N wall time answering the whole batch; answers too."""
    answers = None
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        current = [engine.reachable(s, t) for s, t in pairs]
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        if answers is None:
            answers = current
        else:
            assert current == answers
    return best, answers


def measure_kernel_speedup():
    """Per-corpus and aggregate legacy-vs-bitmask batch reach times.

    Both kernels run over the *same* :class:`GrammarIndex` (the index
    is kernel-agnostic; only the traversal engine differs), each from
    a cold engine so the bitmask side pays its mask build and closure
    cache inside the measurement — the gate covers the whole batch
    cost, not just the steady state.
    """
    per_corpus = {}
    legacy_total = bitmask_total = 0.0
    for name in sorted(SMOKE_CORPORA):
        graph, alphabet = SMOKE_CORPORA[name]()
        # The facade's index is built over the *canonical* grammar —
        # the numbering GrammarIndex documents and both kernels share.
        index = CompressedGraph.compress(graph, alphabet).index
        pairs = reach_workload(index.total_nodes)
        legacy_time, legacy_answers = _time_batch(
            ReachabilityQueries(index, kernel="legacy"), pairs)
        bitmask_time, bitmask_answers = _time_batch(
            ReachabilityQueries(index, kernel="bitmask"), pairs)
        assert bitmask_answers == legacy_answers, name
        per_corpus[name] = {
            "legacy_ms": round(legacy_time * 1e3, 2),
            "bitmask_ms": round(bitmask_time * 1e3, 2),
            "speedup": round(legacy_time / bitmask_time, 2),
        }
        legacy_total += legacy_time
        bitmask_total += bitmask_time
    return per_corpus, legacy_total, bitmask_total


def kernel_gate():
    """The check_bench_regression measurement: aggregate >= 5x."""
    per_corpus, legacy_total, bitmask_total = measure_kernel_speedup()
    return {
        "corpora": per_corpus,
        "requests": 400,
        "legacy_ms": round(legacy_total * 1e3, 2),
        "bitmask_ms": round(bitmask_total * 1e3, 2),
        "speedup": round(legacy_total / bitmask_total, 2),
        "required_speedup": GATE_KERNEL_SPEEDUP,
    }


def cold_open_gate():
    """Cold-open a 4-shard GRPS for one shard; measure copied bytes."""
    from repro.serving.router import ShardHost

    graph, alphabet = SMOKE_CORPORA[GATE_COLD_OPEN_CORPUS]()
    blob = ShardedCompressedGraph.compress(
        graph, alphabet, shards=GATE_COLD_OPEN_SHARDS,
        partitioner="bfs", validate=False).to_bytes()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gate.grps"
        path.write_bytes(blob)
        start = time.perf_counter()
        host = ShardHost(path, shard=1).start()
        open_ms = (time.perf_counter() - start) * 1e3
        try:
            container = host.container
            materialized = container.materialized_bytes
            total = container.total_bytes
            sections = dict(container.materialized_sections)
        finally:
            host.close()
    return {
        "corpus": GATE_COLD_OPEN_CORPUS,
        "shards": GATE_COLD_OPEN_SHARDS,
        "served_shard": 1,
        "open_ms": round(open_ms, 2),
        "container_bytes": total,
        "materialized_bytes": materialized,
        "materialized_sections": sections,
        "fraction": round(materialized / total, 4),
        "required_fraction": GATE_COLD_OPEN_FRACTION,
    }


@pytest.mark.smoke
def test_bitmask_kernel_clears_aggregate_speedup_gate():
    """Acceptance gate: >= 5x aggregate batch reach, all corpora."""
    per_corpus, legacy_total, bitmask_total = measure_kernel_speedup()
    speedup = legacy_total / bitmask_total
    slowest = min(per_corpus.items(), key=lambda kv: kv[1]["speedup"])
    Report.add(_SECTION,
               f"{len(per_corpus)} corpora x 400 reach: legacy "
               f"{legacy_total * 1e3:.1f} ms, bitmask "
               f"{bitmask_total * 1e3:.1f} ms ({speedup:.2f}x "
               f"aggregate; slowest corpus {slowest[0]} at "
               f"{slowest[1]['speedup']:.2f}x)")
    assert speedup >= GATE_KERNEL_SPEEDUP, (
        f"bitmask kernel is only {speedup:.2f}x legacy on the "
        f"aggregate batch (gate: {GATE_KERNEL_SPEEDUP}x)"
    )


@pytest.mark.smoke
def test_cold_open_materializes_under_fraction_gate():
    """Acceptance gate: 1-of-4-shard open copies < 30% of the file."""
    result = cold_open_gate()
    Report.add(_SECTION,
               f"cold open {result['corpus']} shard "
               f"{result['served_shard']}/{result['shards']}: "
               f"{result['materialized_bytes']}/"
               f"{result['container_bytes']} bytes copied "
               f"({result['fraction']:.1%}) in {result['open_ms']} ms")
    assert result["fraction"] < GATE_COLD_OPEN_FRACTION, (
        f"cold open materialized {result['fraction']:.1%} of the "
        f"container (gate: < {GATE_COLD_OPEN_FRACTION:.0%}); "
        f"sections: {result['materialized_sections']}"
    )
