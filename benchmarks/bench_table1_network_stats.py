"""Table I — network graph statistics: |V|, |E|, |[~FP]|.

The paper's Table I lists node count, edge count and the number of
FP-equivalence classes for the eight SNAP network graphs.  We report
the same columns for the seeded stand-ins (absolute numbers are
scaled; the *fraction* of FP classes per node is the comparable
quantity, cf. Fig. 11).
"""

from repro.bench import Report
from repro.core.orders import fp_equivalence_classes
from repro.datasets import load_dataset
from repro.datasets.registry import names_by_family

_SECTION = "Table I: network graphs (|V|, |E|, |[~FP]|)"


def _stats_row(name):
    graph, _ = load_dataset(name)
    classes = fp_equivalence_classes(graph)
    Report.add(_SECTION,
               f"{name:18s} |V|={graph.node_size:7d} "
               f"|E|={graph.num_edges:7d} |[~FP]|={classes:7d} "
               f"({classes / max(1, graph.node_size):.2%} of nodes)")
    return classes


def test_table1_network_stats(benchmark):
    names = names_by_family("network")

    def run():
        return [_stats_row(name) for name in names]

    classes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(classes) == 8
    assert all(c > 0 for c in classes)
