"""Figure 14 — growing DBLP version graph under different node orders.

The paper compresses version graphs assembled from 1..11 cumulative
DBLP snapshots (1960..1970) with FP / BFS / random / natural orders
and the k2-tree baseline.  Finding: FP clearly beats the other orders
as versions accumulate, whose results sit much closer to k2-trees.

Assertions: on the full 11-version graph, FP gives the smallest
gRePair output among the orders, and gRePair-FP beats k2.
"""

from repro.bench import Report, baseline_sizes, bits_per_edge, \
    grepair_bytes
from repro.core.pipeline import GRePairSettings
from repro.datasets.versions import coauthorship_snapshots, \
    disjoint_union

_SECTION = "Figure 14: DBLP version growth by node order (bpe)"
_ORDERS = ["fp", "bfs", "random", "natural"]
_STEPS = [1, 3, 5, 7, 9, 11]


def test_fig14_growth(benchmark):
    snapshots = coauthorship_snapshots(11, 30, seed=303)

    def run():
        table = {}
        for step in _STEPS:
            graph, alphabet = disjoint_union(snapshots[:step])
            row = {}
            for order in _ORDERS:
                size, _ = grepair_bytes(
                    graph, alphabet,
                    GRePairSettings(order=order, seed=5))
                row[order] = bits_per_edge(size, graph.num_edges)
            row["k2"] = bits_per_edge(
                baseline_sizes(graph, alphabet,
                               include_lm_hn=False)["k2"],
                graph.num_edges)
            table[step] = row
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    for step in _STEPS:
        row = table[step]
        cells = " ".join(f"{key}:{row[key]:6.2f}"
                         for key in _ORDERS + ["k2"])
        Report.add(_SECTION, f"versions={step:2d}  {cells}")

    final = table[11]
    assert final["fp"] == min(final[order] for order in _ORDERS)
    assert final["fp"] < final["k2"]
    # The FP advantage grows with the number of versions.
    assert (table[11]["random"] - table[11]["fp"]) > \
        (table[1]["random"] - table[1]["fp"]) - 0.3
