"""Facade serving path — open a container + 1k mixed queries.

The :class:`repro.api.CompressedGraph` redesign promises a
serving-grade handle: open once, canonicalize at most once (lazily, on
the first query), answer every subsequent query from the cached index.
This module measures that open-plus-query path end to end and asserts
the contract the regression gate (``scripts/check_bench_regression.py``)
also enforces — the lazy index adds **zero** extra canonicalization
passes over the single one the legacy per-``GrammarQueries`` path paid
per construction.

Run the smoke lane with ``pytest -m smoke benchmarks`` or the timed
microbenchmark with ``pytest benchmarks/bench_facade_queries.py``.
"""

import random

import pytest

from repro import CompressedGraph
from repro.bench import Report
from repro.core.grammar import SLHRGrammar
from repro.datasets import fig13_base_graph, identical_copies

_SECTION = "Facade serving: open + 1k mixed queries"


def _container_bytes():
    graph, alphabet = identical_copies(fig13_base_graph(), 128)
    handle = CompressedGraph.compress(graph, alphabet, validate=False)
    return handle.to_bytes(include_names=False)


def _mixed_requests(total_nodes, count=1000, seed=11):
    """A serving-style mix: neighborhoods, reach, degrees, counts."""
    rng = random.Random(seed)
    kinds = ("out", "in", "neighborhood", "reach", "degree", "nodes",
             "edges", "components")
    requests = []
    for _ in range(count):
        kind = rng.choice(kinds)
        if kind == "reach":
            requests.append((kind, rng.randint(1, total_nodes),
                             rng.randint(1, total_nodes)))
        elif kind in ("out", "in", "neighborhood", "degree"):
            requests.append((kind, rng.randint(1, total_nodes)))
        else:
            requests.append((kind,))
    return requests


@pytest.mark.smoke
def test_facade_single_canonicalization_under_query_mix():
    """Contract: one canonicalization per handle, however many queries."""
    blob = _container_bytes()
    served = CompressedGraph.from_bytes(blob)
    assert served.canonicalizations == 0  # lazy until the first query
    total_nodes = served.node_count()     # first query: the one build
    assert served.canonicalizations == 1

    calls = []
    original = SLHRGrammar.canonicalize

    def counting(self):
        calls.append(1)
        return original(self)

    SLHRGrammar.canonicalize = counting
    try:
        served.batch(_mixed_requests(total_nodes, count=200))
        for node in (1, 2, 3):
            served.out(node)
            served.in_(node)
    finally:
        SLHRGrammar.canonicalize = original
    # The 200-query batch plus the follow-up loop re-used the cached
    # index: zero further canonicalization passes.
    assert calls == []
    assert served.canonicalizations == 1


def test_facade_open_and_1k_queries(benchmark):
    """Timed: container -> handle -> 1000 mixed queries."""
    blob = _container_bytes()
    probe = CompressedGraph.from_bytes(blob)
    requests = _mixed_requests(probe.node_count())

    def run():
        served = CompressedGraph.from_bytes(blob)
        answers = served.batch(requests)
        return served, answers

    served, answers = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(answers) == len(requests)
    assert served.canonicalizations == 1
    Report.add(_SECTION,
               f"{len(blob)} B container, {len(requests)} queries, "
               f"{served.canonicalizations} canonicalization pass, "
               f"|G|={served.grammar.size}")
