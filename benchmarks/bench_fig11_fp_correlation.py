"""Figure 11 — correlation between FP classes and compression.

Paper: scatter of (fraction of FP-equivalence classes) vs compression;
"there is no graph in the lower right corner, i.e., there is no graph
with a low number of equivalence classes and bad compression."

We reproduce the scatter over all 18 registry graphs and assert the
empty-corner property plus a positive rank correlation.
"""

from repro.bench import Report, grepair_bytes
from repro.core.orders import fp_equivalence_classes
from repro.datasets import DATASETS, load_dataset

_SECTION = "Figure 11: FP classes vs compression ratio"


def _rank_correlation(xs, ys):
    """Spearman rho without scipy (ties broken by order)."""
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        for rank, index in enumerate(order):
            result[index] = float(rank)
        return result

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mean = (n - 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var = sum((a - mean) ** 2 for a in rx)
    return cov / var if var else 0.0


def test_fig11_scatter(benchmark):
    names = list(DATASETS)

    def run():
        points = []
        for name in names:
            graph, alphabet = load_dataset(name)
            fraction = (fp_equivalence_classes(graph)
                        / max(1, graph.node_size))
            _, result = grepair_bytes(graph, alphabet)
            points.append((name, fraction, result.size_ratio))
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, fraction, ratio in sorted(points, key=lambda p: p[1]):
        Report.add(_SECTION,
                   f"{name:18s} classes/|V|={fraction:7.2%} "
                   f"|G|/|g|={ratio:7.2%}")
    # Empty lower-right corner: few classes -> never bad compression.
    for name, fraction, ratio in points:
        if fraction < 0.05:
            assert ratio < 0.5, (name, fraction, ratio)
    rho = _rank_correlation([p[1] for p in points],
                            [p[2] for p in points])
    Report.add(_SECTION, f"Spearman rank correlation: {rho:+.2f}")
    assert rho > 0.4
