"""Engine instrumentation — passes, settles and queue ops per corpus.

The incremental engine's contract: one seed counting pass per phase and
**zero re-count passes**, with realignment work (settle rounds) bounded
by the dirty regions instead of the graph.  This module measures both
engines over the shared smoke corpora, asserts the contract, and
reports the maintained-work comparison next to the paper tables.

Run the smoke lane with ``pytest -m smoke benchmarks`` (seconds) or the
timed comparison with ``pytest benchmarks/bench_incremental_passes.py``.
"""

import pytest

from repro import GRePairSettings
from repro.bench import Report, SMOKE_CORPORA, compression_stats

_SECTION = "Engine maintenance: passes / settles / queue ops"

_IDS = list(SMOKE_CORPORA)


@pytest.mark.smoke
@pytest.mark.parametrize("name", _IDS)
def test_incremental_zero_recount_passes(name):
    """Acceptance gate: no full re-count pass on any smoke corpus."""
    graph, alphabet = SMOKE_CORPORA[name]()
    stats, _ = compression_stats(graph, alphabet,
                                 GRePairSettings(engine="incremental"))
    assert stats.recount_passes == 0
    # One seed pass for the main loop, at most one more for the
    # virtual-edge phase.
    assert 1 <= stats.passes <= 2


@pytest.mark.smoke
@pytest.mark.parametrize("name", _IDS)
def test_incremental_matches_recount_ratio(name):
    """Acceptance gate: compression ratio within 1% of the oracle."""
    graph, alphabet = SMOKE_CORPORA[name]()
    sizes = {}
    for engine in ("incremental", "recount"):
        _, result = compression_stats(graph, alphabet,
                                      GRePairSettings(engine=engine))
        sizes[engine] = result.grammar.size
    assert sizes["incremental"] <= sizes["recount"] * 1.01 + 1, (
        f"{name}: incremental |G|={sizes['incremental']} vs "
        f"recount |G|={sizes['recount']}"
    )


@pytest.mark.smoke
def test_settles_cheaper_than_recount_passes():
    """Summed settle work stays below the oracle's re-count work."""
    settle_nodes = 0
    recount_nodes = 0
    for name in _IDS:
        graph, alphabet = SMOKE_CORPORA[name]()
        inc, _ = compression_stats(graph, alphabet,
                                   GRePairSettings(engine="incremental"))
        rec, _ = compression_stats(graph, alphabet,
                                   GRePairSettings(engine="recount"))
        settle_nodes += inc.nodes_recounted
        recount_nodes += rec.recount_passes * graph.node_size
    assert settle_nodes < recount_nodes


def test_engine_maintenance_report(benchmark):
    """Timed comparison of both engines over every smoke corpus."""

    def run():
        rows = []
        for name in _IDS:
            graph, alphabet = SMOKE_CORPORA[name]()
            inc, inc_result = compression_stats(
                graph, alphabet, GRePairSettings(engine="incremental"))
            rec, rec_result = compression_stats(
                graph, alphabet, GRePairSettings(engine="recount"))
            rows.append((name, graph.num_edges, inc, rec,
                         inc_result.grammar.size,
                         rec_result.grammar.size))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, edges, inc, rec, inc_size, rec_size in rows:
        Report.add(_SECTION,
                   f"{name:14s} |E|={edges:5d} "
                   f"inc: passes={inc.passes} settles={inc.settle_rounds} "
                   f"recounted={inc.nodes_recounted:5d} "
                   f"qops={inc.queue_pushes + inc.queue_pops:6d} "
                   f"|G|={inc_size:5d}  "
                   f"rec: passes={rec.passes} |G|={rec_size:5d}")
        assert inc.recount_passes == 0
