"""Socket serving: router + shard processes vs in-process evaluation.

The deployment claim of the serving subsystem is that a compressed
graph is cheap enough to *serve*: a router process plus one forked
process per shard, speaking the wire codec of
:mod:`repro.serving.codec`, answering the full §V family.  This
module measures that claim end to end on the gate corpus:

* build a 2-shard container, serve it (`repro.serving.serve`), and
  push 1k mixed queries through one client connection — batched, the
  shape `GraphClient.batch` ships — against the same workload run
  through the in-process inline path;
* the gate (shared with ``scripts/check_bench_regression.py``):
  socket throughput must stay above :data:`GATE_SOCKET_QPS` — an
  absolute floor, deliberately far below the in-process number,
  because the point of the socket path is process isolation and
  multi-machine reach, not beating shared memory; a floor failure
  means the router is broken or serializing pathologically, not that
  sockets are slower than function calls (they always are);
* answers must be **identical** to the inline path, batch for batch;
* the **concurrent lane**: 64 pipelined clients hammer one server at
  once (each multiplexing chunked batches over its own connection) —
  the aggregate must beat the single strict client measured on the
  same server in the same run, or the event loop is serializing
  instead of pipelining.

Run the smoke lane with ``pytest -m smoke benchmarks`` or the timed
sweep with ``pytest benchmarks/bench_serving.py``.
"""

import random
import threading
import time

import pytest

from repro import ShardedCompressedGraph
from repro.bench import Report, SMOKE_CORPORA
from repro.serving import serve

_SECTION = "Socket serving: router + shard processes vs in-process"

#: The gate corpus, shard count and absolute throughput floor.
GATE_CORPUS = "communication"
GATE_SHARDS = 2
GATE_SOCKET_QPS = 150.0
#: Queries per measured batch (the regression gate's request count).
GATE_REQUESTS = 1000
#: The concurrent lane: this many pipelined clients at once, each
#: shipping its requests as chunked multiplexed batches.
GATE_CONCURRENT_CLIENTS = 64
#: Requests per concurrent client (64 x 64 = 4096 per pass).
GATE_CONCURRENT_REQUESTS = 64
#: Batch size each pipelined client multiplexes its requests in.
GATE_CONCURRENT_CHUNK = 32
#: Absolute aggregate floor for the concurrent lane; the *relative*
#: gate (aggregate >= the single strict client measured on the same
#: server in the same run) is the one that catches a serializing
#: event loop.
GATE_CONCURRENT_QPS = 150.0
#: The failover lane: replicas per shard, and the fraction of healthy
#: throughput that must survive killing one replica of every shard
#: mid-run (with zero wrong answers — correctness is never traded).
GATE_FAILOVER_REPLICAS = 2
GATE_FAILOVER_RATIO = 0.5
#: Requests per batch in the failover lane (the kill lands after the
#: first chunk, so most of the run is measured post-failover).
GATE_FAILOVER_CHUNK = 100


def serving_workload(total_nodes, count=GATE_REQUESTS, seed=17,
                     hot=24):
    """A skewed serving mix: hot-set neighborhoods, degrees, reach."""
    rng = random.Random(seed)
    hot_nodes = [rng.randint(1, total_nodes) for _ in range(hot)]
    requests = []
    for _ in range(count):
        kind = rng.choice(("out", "out", "in", "neighborhood",
                           "degree", "reach"))
        if kind == "reach":
            requests.append((kind, rng.choice(hot_nodes),
                             rng.choice(hot_nodes)))
        else:
            requests.append((kind, rng.choice(hot_nodes)))
    return requests


def build_container(corpus=GATE_CORPUS, shards=GATE_SHARDS):
    """The served bytes plus the in-process reference handle."""
    graph, alphabet = SMOKE_CORPORA[corpus]()
    handle = ShardedCompressedGraph.compress(
        graph, alphabet, shards=shards, cache_size=0, validate=False)
    return handle, handle.to_bytes()


def measure_serving(handle, blob, requests, rounds=3):
    """Best-of-N wall time: inline batch vs one-client socket batch.

    The server runs with ``cache_size=0`` like the handle: this
    measures the evaluation and transport paths, not the LRU.
    Returns ``(inline_seconds, socket_seconds, socket_answers)``.
    """
    inline = None
    expected = handle.batch(requests)
    for _ in range(rounds):
        start = time.perf_counter()
        answers = handle.batch(requests)
        elapsed = time.perf_counter() - start
        assert answers == expected
        inline = elapsed if inline is None else min(inline, elapsed)
    socket_time = None
    with serve(blob, cache_size=0) as server:
        with server.connect() as client:
            client.batch(requests[:10])  # warm every shard process
            for _ in range(rounds):
                start = time.perf_counter()
                answers = client.batch(requests)
                elapsed = time.perf_counter() - start
                assert answers == expected
                socket_time = (elapsed if socket_time is None
                               else min(socket_time, elapsed))
    return inline, socket_time, expected


def measure_concurrent(handle, blob, requests,
                       clients=GATE_CONCURRENT_CLIENTS,
                       per_client=GATE_CONCURRENT_REQUESTS,
                       chunk=GATE_CONCURRENT_CHUNK, rounds=2):
    """Aggregate pipelined throughput of many concurrent clients.

    One server; first a single strict client is timed shipping the
    *same* chunked workload sequentially (the baseline the aggregate
    must beat — same batch shape, same per-batch work, so the delta
    is pure concurrency), then ``clients`` threads — each with its
    own pipelined connection — ship their requests as ``chunk``-sized
    multiplexed batches and verify every answer.  Returns
    ``(single_seconds_per_client_workload, concurrent_seconds,
    total_requests)`` where the second number is the
    best-of-``rounds`` wall time for ``clients * per_client``
    requests.
    """
    workload = requests[:per_client]
    chunks = [workload[start:start + chunk]
              for start in range(0, len(workload), chunk)]
    expected_chunks = [handle.batch(part) for part in chunks]
    single = None
    concurrent = None
    with serve(blob, cache_size=0) as server:
        with server.connect() as client:
            client.batch(requests[:10])  # warm every shard process
            for _ in range(rounds):
                start = time.perf_counter()
                for part, expected in zip(chunks, expected_chunks):
                    assert client.batch(part) == expected
                elapsed = time.perf_counter() - start
                single = (elapsed if single is None
                          else min(single, elapsed))
        for _ in range(rounds):
            barrier = threading.Barrier(clients + 1)
            failures = []

            def worker():
                try:
                    with server.connect(pipeline=True) as client:
                        client.ping()  # connect before the clock
                        barrier.wait()
                        futures = [client.execute_async(part)
                                   for part in chunks]
                        for future, expected in zip(futures,
                                                    expected_chunks):
                            got = [result.unwrap()
                                   for result in future.result(60)]
                            if got != expected:
                                failures.append("wrong answers")
                except Exception as exc:  # surfaced after the join
                    failures.append(exc)

            threads = [threading.Thread(target=worker)
                       for _ in range(clients)]
            for thread in threads:
                thread.start()
            barrier.wait()
            start = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            assert not failures, failures[:3]
            concurrent = (elapsed if concurrent is None
                          else min(concurrent, elapsed))
    return single, concurrent, clients * len(workload)


def measure_failover(handle, blob, requests,
                     replicas=GATE_FAILOVER_REPLICAS,
                     chunk=GATE_FAILOVER_CHUNK):
    """Healthy vs kill-one-replica-mid-run throughput, every answer
    verified against the inline oracle.

    Two passes over fresh ``replicas``-per-shard servers: the first
    runs healthy; the second kills replica 0 of *every* shard after
    the first chunk, so the bulk of its requests route through the
    failover path (dead-link detection, backoff, resend to the
    surviving replica).  Returns ``(healthy_seconds,
    failover_seconds, wrong_answers)``.
    """
    chunks = [requests[start:start + chunk]
              for start in range(0, len(requests), chunk)]
    expected = [handle.batch(part) for part in chunks]

    def run_pass(kill_after_first_chunk):
        with serve(blob, cache_size=0, replicas=replicas) as server:
            with server.connect() as client:
                client.batch(requests[:10])  # warm every replica link
                wrong = 0
                start = time.perf_counter()
                for index, (part, want) in enumerate(
                        zip(chunks, expected)):
                    if kill_after_first_chunk and index == 1:
                        for shard in range(server.num_shards):
                            server.kill_replica(shard, 0)
                    if client.batch(part) != want:
                        wrong += 1
                return time.perf_counter() - start, wrong

    healthy, wrong_healthy = run_pass(False)
    failover, wrong_failover = run_pass(True)
    return healthy, failover, wrong_healthy + wrong_failover


@pytest.mark.smoke
def test_socket_serving_meets_throughput_floor():
    """Acceptance gate: a served 2-shard graph answers 1k mixed
    queries end to end above the absolute throughput floor, with
    answers identical to the inline path."""
    handle, blob = build_container()
    requests = serving_workload(handle.node_count())
    inline, socket_time, _ = measure_serving(handle, blob, requests)
    qps = len(requests) / socket_time
    Report.add(_SECTION,
               f"{GATE_CORPUS}, {GATE_SHARDS} shards, "
               f"{len(requests)} requests: inline "
               f"{inline * 1e3:.1f} ms "
               f"({len(requests) / inline:.0f} q/s), socket "
               f"{socket_time * 1e3:.1f} ms ({qps:.0f} q/s)")
    assert qps >= GATE_SOCKET_QPS, (
        f"socket serving reached only {qps:.0f} q/s "
        f"(floor: {GATE_SOCKET_QPS:.0f} q/s)"
    )


@pytest.mark.smoke
def test_concurrent_clients_beat_the_single_client():
    """Acceptance gate for the pipelined front end: 64 concurrent
    pipelined clients must push more aggregate throughput through one
    server than a single strict client gets shipping the *same*
    chunked workload on the same server in the same run — with every
    answer verified — plus an absolute floor.  A failure here means
    the event loop is serializing connections instead of multiplexing
    them."""
    handle, blob = build_container()
    requests = serving_workload(handle.node_count())
    single, concurrent, total = measure_concurrent(handle, blob,
                                                   requests)
    single_qps = GATE_CONCURRENT_REQUESTS / single
    concurrent_qps = total / concurrent
    Report.add(_SECTION,
               f"{GATE_CONCURRENT_CLIENTS} pipelined clients x "
               f"{GATE_CONCURRENT_REQUESTS} requests "
               f"(chunks of {GATE_CONCURRENT_CHUNK}): "
               f"{concurrent_qps:.0f} q/s aggregate vs "
               f"{single_qps:.0f} q/s single strict client on the "
               f"same chunks")
    assert concurrent_qps >= GATE_CONCURRENT_QPS, (
        f"concurrent serving reached only {concurrent_qps:.0f} q/s "
        f"(floor: {GATE_CONCURRENT_QPS:.0f} q/s)")
    assert concurrent_qps >= single_qps, (
        f"{GATE_CONCURRENT_CLIENTS} pipelined clients pushed "
        f"{concurrent_qps:.0f} q/s aggregate, below the "
        f"{single_qps:.0f} q/s a single strict client gets on the "
        f"same server — the loop is serializing, not pipelining")


@pytest.mark.smoke
def test_failover_keeps_half_the_throughput_and_all_the_answers():
    """Acceptance gate for replica failover: killing one replica of
    every shard mid-run must retain at least
    :data:`GATE_FAILOVER_RATIO` of the healthy run's throughput and
    produce **zero** wrong answers — resilience is not allowed to
    cost correctness, and a ratio collapse means dead-link detection
    is stalling the router (e.g. waiting out a timeout per request
    instead of marking the replica down once)."""
    handle, blob = build_container()
    requests = serving_workload(handle.node_count())
    healthy, failover, wrong = measure_failover(handle, blob,
                                                requests)
    healthy_qps = len(requests) / healthy
    failover_qps = len(requests) / failover
    ratio = failover_qps / healthy_qps
    Report.add(_SECTION,
               f"failover ({GATE_FAILOVER_REPLICAS} replicas/shard, "
               f"one killed mid-run): healthy {healthy_qps:.0f} q/s, "
               f"with failover {failover_qps:.0f} q/s "
               f"({ratio:.0%} retained), wrong answers: {wrong}")
    assert wrong == 0, (
        f"{wrong} batch(es) answered wrongly during failover")
    assert ratio >= GATE_FAILOVER_RATIO, (
        f"throughput with a dead replica fell to {ratio:.0%} of "
        f"healthy (floor: {GATE_FAILOVER_RATIO:.0%})")


@pytest.mark.smoke
def test_served_answers_identical_across_codecs():
    """Both wire codecs, same answers as the in-process handle."""
    handle, blob = build_container()
    requests = serving_workload(handle.node_count(), count=200,
                                seed=23)
    expected = handle.batch(requests)
    for codec in ("json", "binary"):
        with serve(blob, codec=codec, cache_size=0) as server:
            with server.connect() as client:
                assert client.batch(requests) == expected


@pytest.mark.parametrize("shards", (1, 2, 4))
def test_serving_sweep(benchmark, shards):
    """Timed sweep: socket throughput by shard count for the report."""
    handle, blob = build_container(shards=shards)
    requests = serving_workload(handle.node_count())
    expected = handle.batch(requests)
    with serve(blob, cache_size=0) as server:
        with server.connect() as client:
            client.batch(requests[:10])

            def run():
                return client.batch(requests)

            answers = benchmark.pedantic(run, rounds=3, iterations=1)
            assert answers == expected
            start = time.perf_counter()
            client.batch(requests)
            elapsed = time.perf_counter() - start
    Report.add(_SECTION,
               f"{shards} shard(s): {len(requests)} requests over one "
               f"connection, {len(requests) / elapsed:8.0f} q/s, "
               f"boundary={handle.boundary_edge_count}")
