"""Partitioner quality and cross-shard reach regimes, head to head.

Two claims of the partition layer are measured on a **single
component** corpus — the case ROADMAP called out, where ``hash``
shreds the edges and ``connectivity`` cannot split at all:

* **edge cut** — the BFS-region-growing and label-propagation
  partitioners must produce strictly fewer boundary edges than the
  ``hash`` baseline at the gate shard count (with balance kept);
* **cross-shard reach** — on the edge-cut partition, closure-backed
  reach (one in-shard batch per endpoint shard + O(1) closure hops)
  must beat boundary chaining on the same query set.  The closure's
  one-time build is measured and reported as a break-even query
  count (it amortizes across a serving handle's lifetime — and is
  skipped entirely when the container persists the closure).

``scripts/check_bench_regression.py`` gates on both via
:func:`partitioner_gate`.  Run the smoke lane with
``pytest -m smoke benchmarks`` or the timed sweep with
``pytest benchmarks/bench_partitioners.py``.
"""

import random
import time

import pytest

from repro import ShardedCompressedGraph
from repro.bench import Report, SMOKE_CORPORA
from repro.partition import PARTITIONERS, cut_statistics

_SECTION = "Partitioners: edge cut and cross-shard reach regimes"

#: The gate corpus (single component: 347 nodes, 419 edges, one blob
#: no connectivity partitioner can split) and shard count.
GATE_CORPUS = "rdf-identica"
GATE_SHARDS = 4
#: Partitioners compared by the cut table.
GATE_PARTITIONERS = ("hash", "bfs", "label")
#: Cross-shard reach queries per timed strategy.
GATE_REACH_QUERIES = 120


def cut_table(corpus=GATE_CORPUS, shards=GATE_SHARDS):
    """name -> cut statistics of each gate partitioner's assignment."""
    graph, _ = SMOKE_CORPORA[corpus]()
    return {name: cut_statistics(graph,
                                 PARTITIONERS[name](graph, shards),
                                 shards)
            for name in GATE_PARTITIONERS}


def build_handle(partitioner, corpus=GATE_CORPUS, shards=GATE_SHARDS):
    """An uncached sharded handle over the gate corpus."""
    graph, alphabet = SMOKE_CORPORA[corpus]()
    return ShardedCompressedGraph.compress(
        graph, alphabet, shards=shards, partitioner=partitioner,
        cache_size=0, validate=False)


def cross_shard_pairs(handle, count=GATE_REACH_QUERIES, seed=13):
    """Distinct (source, target) pairs whose endpoints span shards."""
    total = handle.node_count()
    rng = random.Random(seed)
    pairs = []
    seen = set()
    while len(pairs) < count:
        source = rng.randint(1, total)
        target = rng.randint(1, total)
        if handle._owner(source) == handle._owner(target):
            continue
        if (source, target) in seen:
            continue
        seen.add((source, target))
        pairs.append((source, target))
    return pairs


def measure_reach(handle, pairs, strategy, rounds=3):
    """Best-of-N wall time for one pinned reach strategy."""
    requests = [("reach", source, target) for source, target in pairs]
    handle.planner.force = strategy
    try:
        best = None
        expected = handle.batch(requests)
        for _ in range(rounds):
            start = time.perf_counter()
            answers = handle.batch(requests)
            elapsed = time.perf_counter() - start
            assert answers == expected
            best = elapsed if best is None else min(best, elapsed)
    finally:
        handle.planner.force = None
    return best, expected


def measure_regimes(handle, pairs):
    """(closure_seconds, build_seconds, chaining_seconds); answers
    asserted identical between the regimes."""
    start = time.perf_counter()
    handle.warm_closure()
    build = time.perf_counter() - start
    closure_time, closure_answers = measure_reach(handle, pairs,
                                                  "closure")
    chaining_time, chaining_answers = measure_reach(handle, pairs,
                                                    "chaining")
    assert closure_answers == chaining_answers
    return closure_time, build, chaining_time


def partitioner_gate():
    """The measurement ``check_bench_regression.py`` gates on."""
    cuts = cut_table()
    handle = build_handle("bfs")
    pairs = cross_shard_pairs(handle)
    closure_time, build, chaining_time = measure_regimes(handle, pairs)
    per_query_gap = (chaining_time - closure_time) / len(pairs)
    return {
        "corpus": GATE_CORPUS,
        "shards": GATE_SHARDS,
        "cut": {name: stats["boundary_edges"]
                for name, stats in cuts.items()},
        "balance": {name: round(stats["balance"], 3)
                    for name, stats in cuts.items()},
        "reach_queries": len(pairs),
        "closure_ms": round(closure_time * 1e3, 2),
        "closure_build_ms": round(build * 1e3, 2),
        "chaining_ms": round(chaining_time * 1e3, 2),
        "speedup": round(chaining_time / closure_time, 2),
        "break_even_queries": (round(build / per_query_gap)
                               if per_query_gap > 0 else None),
    }


@pytest.mark.smoke
def test_edge_cut_partitioners_beat_hash():
    """Acceptance gate: strictly fewer boundary edges than hash, with
    balance intact, on a single-component corpus."""
    cuts = cut_table()
    for name in ("bfs", "label"):
        assert cuts[name]["boundary_edges"] < \
            cuts["hash"]["boundary_edges"], (
            f"{name} cut {cuts[name]['boundary_edges']} >= hash "
            f"{cuts['hash']['boundary_edges']}"
        )
        assert cuts[name]["balance"] <= 1.5
    Report.add(_SECTION,
               f"{GATE_CORPUS}, {GATE_SHARDS} shards: "
               + ", ".join(f"{name} cut={stats['boundary_edges']} "
                           f"(balance {stats['balance']:.2f})"
                           for name, stats in cuts.items()))


@pytest.mark.smoke
def test_closure_reach_beats_chaining():
    """Acceptance gate: closure-backed cross-shard reach beats
    boundary chaining on the edge-cut partition."""
    handle = build_handle("bfs")
    pairs = cross_shard_pairs(handle)
    closure_time, build, chaining_time = measure_regimes(handle, pairs)
    gap = (chaining_time - closure_time) / len(pairs)
    break_even = round(build / gap) if gap > 0 else None
    Report.add(_SECTION,
               f"{GATE_CORPUS}, {GATE_SHARDS} shards (bfs), "
               f"{len(pairs)} cross-shard reach: closure "
               f"{closure_time * 1e3:.1f} ms (one-time build "
               f"{build * 1e3:.0f} ms, break-even ~{break_even} "
               f"queries), chaining {chaining_time * 1e3:.1f} ms "
               f"({chaining_time / closure_time:.1f}x)")
    assert closure_time < chaining_time, (
        f"closure ({closure_time * 1e3:.1f} ms) did not beat chaining "
        f"({chaining_time * 1e3:.1f} ms) over {len(pairs)} queries"
    )


@pytest.mark.parametrize("partitioner", sorted(GATE_PARTITIONERS))
def test_partitioner_sweep(benchmark, partitioner):
    """Timed sweep: per-partitioner cut + default-plan reach latency."""
    handle = build_handle(partitioner)
    pairs = cross_shard_pairs(handle, count=60, seed=29)
    requests = [("reach", source, target) for source, target in pairs]
    handle.batch(requests[:5])  # build indexes outside the timing

    def run():
        return handle.batch(requests)

    answers = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(answers) == len(requests)
    plan = handle.planner.plan(0, GATE_SHARDS - 1,
                               closure_built=handle.closure_built)
    stats = handle.partition_stats
    Report.add(_SECTION,
               f"{partitioner:6s}: cut={stats['boundary_edges']:4.0f} "
               f"ratio={stats['cut_ratio']:.3f} "
               f"balance={stats['balance']:.2f} "
               f"default-plan={plan.strategy}")
